//! Fluent construction of dependence graphs.

use crate::ddg::{Ddg, DepKind, Edge, MemAccess, Node, NodeId};
use crate::op::OpKind;

/// Fluent builder for [`Ddg`]s, used by the workload kernels, the synthetic
/// generator and the tests.
///
/// ```
/// use hcrf_ir::{DdgBuilder, OpKind};
/// let mut b = DdgBuilder::new("daxpy");
/// let lx = b.load(0, 8);
/// let ly = b.load(1, 8);
/// let mul = b.op(OpKind::FMul);   // a * x[i]
/// let add = b.op(OpKind::FAdd);   // + y[i]
/// let st = b.store(1, 8);
/// b.flow(lx, mul, 0);
/// b.flow(ly, add, 0);
/// b.flow(mul, add, 0);
/// b.flow(add, st, 0);
/// let ddg = b.build();
/// assert_eq!(ddg.num_nodes(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct DdgBuilder {
    ddg: Ddg,
}

impl DdgBuilder {
    /// Start building a graph with the given loop name.
    pub fn new(name: impl Into<String>) -> Self {
        DdgBuilder {
            ddg: Ddg::new(name),
        }
    }

    /// Add a compute operation of kind `kind`.
    pub fn op(&mut self, kind: OpKind) -> NodeId {
        debug_assert!(
            !kind.is_memory(),
            "memory nodes must be added with load()/store()"
        );
        self.ddg.add_node(Node::new(kind))
    }

    /// Add a compute operation that reads a loop-invariant value.
    pub fn op_invariant(&mut self, kind: OpKind) -> NodeId {
        let id = self.ddg.add_node(Node::new(kind));
        self.ddg.node_mut(id).reads_invariant = true;
        id
    }

    /// Add a load from array `base` with the given stride (bytes/iteration).
    pub fn load(&mut self, base: u32, stride: i64) -> NodeId {
        let mut node = Node::new(OpKind::Load);
        node.mem = Some(MemAccess {
            base,
            offset: 0,
            stride,
            size: 8,
        });
        self.ddg.add_node(node)
    }

    /// Add a load with an explicit access descriptor.
    pub fn load_at(&mut self, access: MemAccess) -> NodeId {
        let mut node = Node::new(OpKind::Load);
        node.mem = Some(access);
        self.ddg.add_node(node)
    }

    /// Add a store to array `base` with the given stride (bytes/iteration).
    pub fn store(&mut self, base: u32, stride: i64) -> NodeId {
        let mut node = Node::new(OpKind::Store);
        node.mem = Some(MemAccess {
            base,
            offset: 0,
            stride,
            size: 8,
        });
        self.ddg.add_node(node)
    }

    /// Add a store with an explicit access descriptor.
    pub fn store_at(&mut self, access: MemAccess) -> NodeId {
        let mut node = Node::new(OpKind::Store);
        node.mem = Some(access);
        self.ddg.add_node(node)
    }

    /// Add a flow (true) dependence with iteration distance `distance`.
    pub fn flow(&mut self, src: NodeId, dst: NodeId, distance: u32) -> &mut Self {
        self.ddg.add_edge(Edge {
            src,
            dst,
            kind: DepKind::Flow,
            distance,
        });
        self
    }

    /// Add an anti dependence.
    pub fn anti(&mut self, src: NodeId, dst: NodeId, distance: u32) -> &mut Self {
        self.ddg.add_edge(Edge {
            src,
            dst,
            kind: DepKind::Anti,
            distance,
        });
        self
    }

    /// Add an output dependence.
    pub fn output(&mut self, src: NodeId, dst: NodeId, distance: u32) -> &mut Self {
        self.ddg.add_edge(Edge {
            src,
            dst,
            kind: DepKind::Output,
            distance,
        });
        self
    }

    /// Add a memory dependence.
    pub fn mem_dep(&mut self, src: NodeId, dst: NodeId, distance: u32) -> &mut Self {
        self.ddg.add_edge(Edge {
            src,
            dst,
            kind: DepKind::Mem,
            distance,
        });
        self
    }

    /// Finish building: marks recurrences and validates the graph.
    ///
    /// # Panics
    /// Panics if the graph fails validation (a builder bug).
    pub fn build(mut self) -> Ddg {
        self.ddg.mark_recurrences();
        self.ddg
            .validate()
            .expect("DdgBuilder produced an inconsistent graph");
        self.ddg
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.ddg.num_nodes()
    }

    /// Whether no node has been added yet.
    pub fn is_empty(&self) -> bool {
        self.ddg.num_nodes() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpLatencies;

    #[test]
    fn chain_builder() {
        let mut b = DdgBuilder::new("chain");
        let l = b.load(0, 8);
        let a = b.op(OpKind::FAdd);
        let s = b.store(1, 8);
        b.flow(l, a, 0).flow(a, s, 0);
        let g = b.build();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.node(l).mem.is_some());
    }

    #[test]
    fn recurrence_builder_marks_nodes() {
        let mut b = DdgBuilder::new("rec");
        let a = b.op(OpKind::FAdd);
        let l = b.load(0, 8);
        b.flow(l, a, 0);
        b.flow(a, a, 1);
        let g = b.build();
        assert!(g.node(a).on_recurrence);
        assert!(!g.node(l).on_recurrence);
        // First order recurrence through a 4-cycle adder: RecMII == 4.
        assert_eq!(g.rec_mii(&OpLatencies::paper_baseline()), 4);
    }

    #[test]
    fn invariant_flag() {
        let mut b = DdgBuilder::new("inv");
        let m = b.op_invariant(OpKind::FMul);
        let g = b.build();
        assert!(g.node(m).reads_invariant);
    }

    #[test]
    #[should_panic]
    fn memory_op_through_op_panics_in_debug() {
        let mut b = DdgBuilder::new("bad");
        let _ = b.op(OpKind::Load);
    }
}
