//! Property tests of the IR layer: SCC computation against a brute-force
//! reachability oracle, MII bounds, and ASAP/ALAP consistency.

// The oracle comparisons index two matrices in lockstep; iterator zipping
// would only obscure them.
#![allow(clippy::needless_range_loop)]

use hcrf_ir::{analysis, mii, Ddg, DdgBuilder, NodeId, OpKind, OpLatencies, ResourceCounts};
use proptest::prelude::*;

/// Random graph: `n` nodes, arbitrary edges (cycles allowed) with small
/// distances on back edges so the graph remains a legal dependence graph.
fn arb_graph() -> impl Strategy<Value = Ddg> {
    (
        2usize..12,
        prop::collection::vec((0usize..12, 0usize..12, 0u32..3), 0..30),
    )
        .prop_map(|(n, edges)| {
            let mut b = DdgBuilder::new("prop");
            let ids: Vec<NodeId> = (0..n)
                .map(|i| {
                    b.op(match i % 3 {
                        0 => OpKind::FAdd,
                        1 => OpKind::FMul,
                        _ => OpKind::FDiv,
                    })
                })
                .collect();
            for (s, d, dist) in edges {
                let src = ids[s % n];
                let dst = ids[d % n];
                // Forward edges may have distance 0; edges that do not go
                // strictly forward must carry a positive distance so every
                // cycle has distance > 0 (a well-formed dependence graph).
                let distance = if s % n < d % n { dist } else { dist.max(1) };
                b.flow(src, dst, distance);
            }
            b.build()
        })
}

/// Brute-force SCC oracle: mutual reachability via Floyd–Warshall.
fn brute_force_same_scc(g: &Ddg) -> Vec<Vec<bool>> {
    let n = g.num_nodes();
    let mut reach = vec![vec![false; n]; n];
    for (_, e) in g.edges() {
        reach[e.src.index()][e.dst.index()] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if reach[i][k] && reach[k][j] {
                    reach[i][j] = true;
                }
            }
        }
    }
    let mut same = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            same[i][j] = i == j || (reach[i][j] && reach[j][i]);
        }
    }
    same
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tarjan's SCC agrees with the mutual-reachability oracle.
    #[test]
    fn scc_matches_brute_force(g in arb_graph()) {
        let sccs = analysis::strongly_connected_components(&g);
        let oracle = brute_force_same_scc(&g);
        let n = g.num_nodes();
        for i in 0..n {
            for j in 0..n {
                let same = sccs.component[i] == sccs.component[j];
                prop_assert_eq!(
                    same, oracle[i][j],
                    "nodes {} and {} disagree (tarjan {} vs oracle {})",
                    i, j, same, oracle[i][j]
                );
            }
        }
    }

    /// RecMII is at least 1, at most the sum of all delays, and equals 1 for
    /// graphs without any loop-carried edge.
    #[test]
    fn rec_mii_bounds(g in arb_graph()) {
        let lat = OpLatencies::paper_baseline();
        let rec = mii::rec_mii(&g, &lat);
        prop_assert!(rec >= 1);
        let total_delay: i64 = g
            .edges()
            .map(|(_, e)| e.delay(g.node(e.src).kind, &lat))
            .sum::<i64>()
            .max(1);
        prop_assert!(rec as i64 <= total_delay + 1);
        if g.edges().all(|(_, e)| e.distance == 0) {
            prop_assert_eq!(rec, 1);
        }
    }

    /// At an II no smaller than RecMII, every node's ALAP is no earlier than
    /// its ASAP (the acyclic schedule is feasible) and every edge constraint
    /// holds between the ASAP times.
    #[test]
    fn asap_alap_consistent(g in arb_graph()) {
        let lat = OpLatencies::paper_baseline();
        let ii = mii::rec_mii(&g, &lat).max(1);
        let sched = analysis::acyclic_schedule(&g, &lat, ii);
        for id in g.node_ids() {
            prop_assert!(
                sched.lstart[id.index()] >= sched.estart[id.index()],
                "negative slack at node {} (ii {})",
                id,
                ii
            );
        }
        for (_, e) in g.edges() {
            let d = e.delay(g.node(e.src).kind, &lat);
            prop_assert!(
                sched.estart[e.src.index()] + d - (ii as i64) * e.distance as i64
                    <= sched.estart[e.dst.index()]
            );
        }
    }

    /// MII is the max of its two components and ResMII scales down with more
    /// resources.
    #[test]
    fn mii_composition(g in arb_graph()) {
        let lat = OpLatencies::paper_baseline();
        let small = ResourceCounts { fus: 2, mem_ports: 1, buses: 0 };
        let big = ResourceCounts { fus: 16, mem_ports: 8, buses: 0 };
        let res_small = mii::res_mii(&g, &lat, small);
        let res_big = mii::res_mii(&g, &lat, big);
        prop_assert!(res_big <= res_small);
        let m = mii::mii(&g, &lat, big);
        prop_assert!(m >= res_big);
        prop_assert!(m >= mii::rec_mii(&g, &lat));
    }
}
