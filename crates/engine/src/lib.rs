//! Work-stealing execution engine for the HCRF workspace.
//!
//! Every compute surface of the repository — suite sweeps
//! (`hcrf::run_suite`), design-space exploration (`hcrf_explore::explore`)
//! and the bench binaries — funnels its parallelism through this crate
//! instead of rolling its own thread pool. The engine provides three things
//! the flat atomic-counter loops it replaced could not:
//!
//! * **Work stealing across heterogeneous tasks.** Each worker owns a
//!   Chase–Lev-style deque (owner pops the front, thieves batch-steal the
//!   back half; implemented in safe code with short mutex critical
//!   sections). Tasks are *two-level*: callers submit groups (design
//!   points) that decompose into inner tasks (loops), and idle workers
//!   steal loop tasks from a slow point instead of idling behind it.
//!
//! * **A deterministic reduction contract.** Inner results land in
//!   index-ordered slots; the worker finishing a group's last task folds
//!   that index-ordered vector; group results land in group-ordered slots.
//!   Aggregates are therefore **bit-identical for any worker count** —
//!   `tests/engine_equivalence.rs` proves it across 1/2/4/8 workers on
//!   every standard suite × configuration.
//!
//! * **Streaming that survives panics.** Group results are sent to the
//!   *caller's* thread as they complete and handed to the `on_group` hook
//!   there (the explore executor persists them to its result cache). The
//!   channel drains fully before worker panics propagate, so a crash in one
//!   design point can never lose the completed points before it.
//!
//! Workers also own caller-defined per-worker state (created by an `init`
//! hook) — the schedulers park a pooled `AttemptArena` there so consecutive
//! loops rebind one allocation instead of rebuilding per loop. The states
//! are returned to the caller, which harvests pool counters into the
//! `engine.arena_rebinds` telemetry counter.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use hcrf_telemetry::Telemetry;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Default cap on auto-resolved workers (`threads == 0`). Sweeps are
/// memory-bandwidth-bound well before 16 schedulers run concurrently, and
/// an uncapped resolution on a large shared host oversubscribes it for no
/// wall-time gain. Explicit `threads` requests are never capped; callers
/// needing a different auto cap use [`resolve_workers_capped`].
pub const DEFAULT_WORKER_CAP: usize = 16;

/// Resolve a requested thread count to a concrete worker count: `0` means
/// one worker per available CPU, capped at [`DEFAULT_WORKER_CAP`]; any
/// explicit request is honored verbatim. This is the single home of the
/// resolution logic that used to be copy-pasted across the driver and the
/// explore executor.
pub fn resolve_workers(requested: usize) -> usize {
    resolve_workers_capped(requested, DEFAULT_WORKER_CAP)
}

/// [`resolve_workers`] with an explicit cap on the auto-resolved count.
pub fn resolve_workers_capped(requested: usize, cap: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cap.max(1))
}

/// Identity of one inner task as the engine hands it to the work function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskCtx {
    /// Worker executing the task (`0..workers`). Useful as a trace label;
    /// never use it to influence *results* — which worker runs a task is
    /// scheduling-dependent.
    pub worker: usize,
    /// Group the task belongs to.
    pub group: usize,
    /// Index of the task within its group.
    pub index: usize,
}

/// Execution counters of one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Workers the run executed on.
    pub workers: usize,
    /// Inner tasks executed.
    pub tasks: u64,
    /// Successful batch steals (a thief moving the back half of another
    /// worker's deque into its own).
    pub steals: u64,
}

/// Everything one engine run produced.
#[derive(Debug)]
pub struct EngineRun<R, S> {
    /// Per-group results, in group order (deterministic for any worker
    /// count).
    pub results: Vec<R>,
    /// The per-worker states, in worker order.
    pub states: Vec<S>,
    /// Execution counters.
    pub report: EngineReport,
}

/// The execution engine: a worker count plus a telemetry sink. Construct
/// once per run site; the engine itself holds no threads (workers live only
/// for the duration of one `run_two_level` call).
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
    telemetry: Telemetry,
}

/// Sets the poison flag when dropped during a panic, so sibling workers
/// stop spinning for tasks that will never complete and the scope can join
/// (propagating the panic) instead of hanging.
struct PoisonGuard<'a>(&'a AtomicBool);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
        }
    }
}

impl Engine {
    /// An engine with `threads` workers (`0` = auto, see
    /// [`resolve_workers`]) and no telemetry.
    pub fn new(threads: usize) -> Self {
        Engine {
            workers: resolve_workers(threads),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry sink: the run publishes `engine.tasks` /
    /// `engine.steals` / `engine.runs` counters and records one labeled
    /// `worker` span per worker.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run a two-level task set: `group_sizes[g]` inner tasks per group
    /// `g`, each executed by `inner` with a per-worker state from `init`,
    /// folded per group by `fold` over the index-ordered inner results, and
    /// streamed to `on_group` on the caller's thread in completion order.
    ///
    /// The determinism contract: `results` holds `fold`'s output in group
    /// order, each fold sees its group's inner results in index order, and
    /// neither depends on the worker count — only `on_group`'s *call order*
    /// (and which worker ran which task) varies between runs.
    ///
    /// The task stream (groups in order, each group's inner tasks
    /// contiguous and in index order) is seeded across the worker deques in
    /// balanced contiguous shares *by task count*, so every worker starts
    /// with work even when a few large groups dominate — seeding whole
    /// groups round-robin used to leave `workers - groups` deques empty
    /// behind steal chains. Stealing (which moves the back half of a deque)
    /// still redistributes a slow share's tail across idle workers.
    ///
    /// If a task panics, completed groups still stream to `on_group`, then
    /// the panic resumes on the caller's thread.
    pub fn run_two_level<S, T, R>(
        &self,
        group_sizes: &[usize],
        init: impl Fn(usize) -> S + Sync,
        inner: impl Fn(&mut S, TaskCtx) -> T + Sync,
        fold: impl Fn(usize, Vec<T>) -> R + Sync,
        mut on_group: impl FnMut(usize, &R),
    ) -> EngineRun<R, S>
    where
        S: Send,
        T: Send,
        R: Send,
    {
        let total_tasks: usize = group_sizes.iter().sum();
        let workers = self.workers.min(total_tasks).max(1);
        let mut results: Vec<Option<R>> = group_sizes.iter().map(|_| None).collect();

        // Empty groups fold immediately (in group order) on this thread:
        // they have no tasks to schedule and must not hold up the drain.
        for (g, &size) in group_sizes.iter().enumerate() {
            if size == 0 {
                let r = fold(g, Vec::new());
                on_group(g, &r);
                results[g] = Some(r);
            }
        }

        let run = if workers <= 1 {
            self.run_inline(group_sizes, &mut results, init, inner, fold, &mut on_group)
        } else {
            self.run_stealing(
                workers,
                group_sizes,
                &mut results,
                init,
                inner,
                fold,
                &mut on_group,
            )
        };
        let (states, report) = run;

        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("engine.runs", 1);
            self.telemetry.counter_add("engine.tasks", report.tasks);
            self.telemetry.counter_add("engine.steals", report.steals);
        }
        EngineRun {
            results: results
                .into_iter()
                .map(|r| r.expect("every group must have folded"))
                .collect(),
            states,
            report,
        }
    }

    /// The `workers <= 1` path: everything runs on the caller's thread, in
    /// group and index order (tests pin the streaming hook's inline
    /// ordering to exactly this sequence).
    #[allow(clippy::too_many_arguments)]
    fn run_inline<S, T, R>(
        &self,
        group_sizes: &[usize],
        results: &mut [Option<R>],
        init: impl Fn(usize) -> S,
        inner: impl Fn(&mut S, TaskCtx) -> T,
        fold: impl Fn(usize, Vec<T>) -> R,
        on_group: &mut impl FnMut(usize, &R),
    ) -> (Vec<S>, EngineReport) {
        let mut state = init(0);
        let mut tasks = 0u64;
        for (g, &size) in group_sizes.iter().enumerate() {
            if size == 0 {
                continue; // already folded
            }
            let inners: Vec<T> = (0..size)
                .map(|index| {
                    tasks += 1;
                    inner(
                        &mut state,
                        TaskCtx {
                            worker: 0,
                            group: g,
                            index,
                        },
                    )
                })
                .collect();
            let r = fold(g, inners);
            on_group(g, &r);
            results[g] = Some(r);
        }
        (
            vec![state],
            EngineReport {
                workers: 1,
                tasks,
                steals: 0,
            },
        )
    }

    /// The work-stealing path. See the crate docs for the worker model.
    #[allow(clippy::too_many_arguments)]
    fn run_stealing<S, T, R>(
        &self,
        workers: usize,
        group_sizes: &[usize],
        results: &mut [Option<R>],
        init: impl Fn(usize) -> S + Sync,
        inner: impl Fn(&mut S, TaskCtx) -> T + Sync,
        fold: impl Fn(usize, Vec<T>) -> R + Sync,
        on_group: &mut impl FnMut(usize, &R),
    ) -> (Vec<S>, EngineReport)
    where
        S: Send,
        T: Send,
        R: Send,
    {
        // Seed the deques: the task stream (groups in order, inner tasks in
        // index order) splits into balanced contiguous shares by *task*
        // count — `workers <= total` (the caller clamps), so every worker
        // starts with at least one task no matter how few groups there are.
        let total: usize = group_sizes.iter().sum();
        let mut seeded: Vec<VecDeque<(u32, u32)>> = (0..workers).map(|_| VecDeque::new()).collect();
        let mut t = 0usize;
        for (g, &size) in group_sizes.iter().enumerate() {
            for index in 0..size {
                seeded[t * workers / total].push_back((g as u32, index as u32));
                t += 1;
            }
        }
        let deques: Vec<Mutex<VecDeque<(u32, u32)>>> = seeded.into_iter().map(Mutex::new).collect();

        // Per-group reduction state: index-ordered slots + a countdown the
        // last finisher trips to fold and send.
        let slots: Vec<Mutex<Vec<Option<T>>>> = group_sizes
            .iter()
            .map(|&size| Mutex::new((0..size).map(|_| None).collect()))
            .collect();
        let group_left: Vec<AtomicUsize> =
            group_sizes.iter().map(|&s| AtomicUsize::new(s)).collect();
        let remaining = AtomicUsize::new(group_sizes.iter().sum());
        let poisoned = AtomicBool::new(false);
        let steals = AtomicU64::new(0);
        let tasks_run = AtomicU64::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();

        let mut states: Vec<Option<S>> = (0..workers).map(|_| None).collect();
        let mut panic_payload = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let tx = tx.clone();
                    let deques = &deques;
                    let slots = &slots;
                    let group_left = &group_left;
                    let remaining = &remaining;
                    let poisoned = &poisoned;
                    let steals = &steals;
                    let tasks_run = &tasks_run;
                    let init = &init;
                    let inner = &inner;
                    let fold = &fold;
                    let telemetry = self.telemetry.clone();
                    scope.spawn(move || {
                        let _guard = PoisonGuard(poisoned);
                        let mut trace = telemetry.trace_buf();
                        let t0 = trace.now_ns();
                        let mut state = init(me);
                        let mut my_tasks = 0u64;
                        let mut my_steals = 0u64;
                        'work: loop {
                            // Drain own deque from the front.
                            let task = deques[me].lock().expect("deque poisoned").pop_front();
                            let (g, index) = match task {
                                Some(t) => t,
                                None => {
                                    // Steal the back half of the first
                                    // non-empty sibling deque.
                                    let mut stolen = false;
                                    for k in 1..workers {
                                        let victim = (me + k) % workers;
                                        let mut q = deques[victim].lock().expect("deque poisoned");
                                        let n = q.len();
                                        if n == 0 {
                                            continue;
                                        }
                                        // Back half, rounded up (n == 1
                                        // takes the lone task).
                                        let batch = q.split_off(n / 2);
                                        drop(q);
                                        if !batch.is_empty() {
                                            *deques[me].lock().expect("deque poisoned") = batch;
                                            my_steals += 1;
                                            stolen = true;
                                            break;
                                        }
                                    }
                                    if stolen {
                                        continue 'work;
                                    }
                                    if remaining.load(Ordering::SeqCst) == 0
                                        || poisoned.load(Ordering::SeqCst)
                                    {
                                        break 'work;
                                    }
                                    // Tasks are in flight on other workers;
                                    // re-scan after yielding.
                                    std::thread::yield_now();
                                    continue 'work;
                                }
                            };
                            let (g, index) = (g as usize, index as usize);
                            let value = inner(
                                &mut state,
                                TaskCtx {
                                    worker: me,
                                    group: g,
                                    index,
                                },
                            );
                            my_tasks += 1;
                            slots[g].lock().expect("slots poisoned")[index] = Some(value);
                            if group_left[g].fetch_sub(1, Ordering::SeqCst) == 1 {
                                // Last task of the group: fold the
                                // index-ordered slots and stream the result.
                                let inners: Vec<T> = slots[g]
                                    .lock()
                                    .expect("slots poisoned")
                                    .iter_mut()
                                    .map(|s| s.take().expect("group complete"))
                                    .collect();
                                let r = fold(g, inners);
                                let _ = tx.send((g, r));
                            }
                            remaining.fetch_sub(1, Ordering::SeqCst);
                        }
                        steals.fetch_add(my_steals, Ordering::Relaxed);
                        tasks_run.fetch_add(my_tasks, Ordering::Relaxed);
                        trace.span_labeled(
                            "worker",
                            "engine",
                            t0,
                            Some(&format!("w{me}")),
                            &[("tasks", my_tasks as i64), ("steals", my_steals as i64)],
                        );
                        telemetry.flush(&mut trace);
                        state
                    })
                })
                .collect();
            drop(tx);

            // Drain on the caller's thread until every sender is gone. A
            // worker panic drops its sender mid-run, so this loop always
            // terminates — after delivering every group that *did* complete
            // (the flush-before-panic guarantee `on_group` relies on).
            for (g, r) in rx {
                on_group(g, &r);
                results[g] = Some(r);
            }
            for (me, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(state) => states[me] = Some(state),
                    Err(payload) => panic_payload = Some(payload),
                }
            }
        });
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        (
            states
                .into_iter()
                .map(|s| s.expect("worker joined"))
                .collect(),
            EngineReport {
                workers,
                tasks: tasks_run.load(Ordering::Relaxed),
                steals: steals.load(Ordering::Relaxed),
            },
        )
    }

    /// Flat map over `0..count` (size-1 groups): `f(state, index)` lands in
    /// index-ordered results. The degenerate two-level run every
    /// single-level caller (the suite driver, `bench_sched`) uses.
    pub fn map_indexed<S, T>(
        &self,
        count: usize,
        init: impl Fn(usize) -> S + Sync,
        f: impl Fn(&mut S, TaskCtx) -> T + Sync,
    ) -> EngineRun<T, S>
    where
        S: Send,
        T: Send,
    {
        self.map_indexed_each(count, init, f, |_, _| {})
    }

    /// [`Engine::map_indexed`] with a streaming hook invoked on the
    /// caller's thread as each result completes (completion order; index
    /// order on the inline path).
    pub fn map_indexed_each<S, T>(
        &self,
        count: usize,
        init: impl Fn(usize) -> S + Sync,
        f: impl Fn(&mut S, TaskCtx) -> T + Sync,
        on_result: impl FnMut(usize, &T),
    ) -> EngineRun<T, S>
    where
        S: Send,
        T: Send,
    {
        let sizes = vec![1usize; count];
        self.run_two_level(
            &sizes,
            init,
            f,
            |_, mut inners: Vec<T>| inners.pop().expect("size-1 group"),
            on_result,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn resolve_workers_honors_explicit_and_caps_auto() {
        assert_eq!(resolve_workers(3), 3);
        assert_eq!(resolve_workers(64), 64); // explicit requests uncapped
        let auto = resolve_workers(0);
        assert!((1..=DEFAULT_WORKER_CAP).contains(&auto));
        assert_eq!(resolve_workers_capped(0, 1), 1);
        assert!(resolve_workers_capped(0, 0) >= 1); // cap floor
    }

    #[test]
    fn inline_path_runs_in_index_order() {
        let engine = Engine::new(1);
        let mut seen = Vec::new();
        let run = engine.map_indexed_each(
            5,
            |w| w,
            |state, ctx| {
                assert_eq!(*state, 0);
                assert_eq!(ctx.worker, 0);
                ctx.group * 10
            },
            |i, r| seen.push((i, *r)),
        );
        // The inline hook fires in exact index order.
        assert_eq!(seen, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        assert_eq!(run.results, vec![0, 10, 20, 30, 40]);
        assert_eq!(run.states.len(), 1);
        assert_eq!(run.report.tasks, 5);
        assert_eq!(run.report.steals, 0);
    }

    #[test]
    fn parallel_results_are_index_ordered_and_complete() {
        let engine = Engine::new(4);
        let mut seen = Vec::new();
        let run = engine.map_indexed_each(
            32,
            |w| w,
            |_, ctx| {
                // Uneven task costs exercise out-of-order completion.
                if ctx.group % 7 == 0 {
                    std::thread::sleep(Duration::from_millis(3));
                }
                ctx.group as u64 * 2
            },
            |i, r| seen.push((i, *r)),
        );
        assert_eq!(run.results, (0..32).map(|i| i * 2).collect::<Vec<u64>>());
        // The hook saw every result exactly once (in whatever order)...
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..32usize).map(|i| (i, i as u64 * 2)).collect::<Vec<_>>()
        );
        // ...and every worker state came back.
        let mut states = run.states.clone();
        states.sort_unstable();
        assert_eq!(states, vec![0, 1, 2, 3]);
        assert_eq!(run.report.tasks, 32);
    }

    #[test]
    fn two_level_folds_index_ordered_groups_identically_for_any_worker_count() {
        let sizes = [3usize, 0, 5, 1, 4];
        let run_with = |workers: usize| {
            Engine::new(workers).run_two_level(
                &sizes,
                |_| (),
                |_, ctx| format!("{}:{}", ctx.group, ctx.index),
                |g, inners| (g, inners.join(",")),
                |_, _| {},
            )
        };
        let one = run_with(1);
        for workers in [2, 4, 8] {
            let many = run_with(workers);
            assert_eq!(one.results, many.results, "workers={workers}");
            assert_eq!(many.report.tasks, 13);
        }
        assert_eq!(one.results[2], (2, "2:0,2:1,2:2,2:3,2:4".to_string()));
        assert_eq!(one.results[1], (1, String::new()));
    }

    #[test]
    fn idle_workers_steal_from_loaded_deques() {
        // Worker 0's seeded share (tasks 0..4) is slow and everything else
        // is instant: the other workers drain their own shares long before
        // the slow share finishes and must steal its tail to participate.
        let engine = Engine::new(4);
        let run = engine.run_two_level(
            &[16usize],
            |w| w,
            |_, ctx| {
                if ctx.index < 4 {
                    std::thread::sleep(Duration::from_millis(20));
                }
                ctx.index
            },
            |_, inners| inners,
            |_, _| {},
        );
        assert_eq!(run.results[0], (0..16).collect::<Vec<usize>>());
        assert!(
            run.report.steals > 0,
            "expected at least one steal, report: {:?}",
            run.report
        );
    }

    #[test]
    fn task_balanced_seeding_gives_every_worker_work() {
        // Two groups of 16 tasks on 8 workers: seeding whole groups
        // round-robin would fill only two deques and leave six workers
        // queueing behind steal chains; the task-balanced shares seed all
        // eight deques with four tasks each. Every task holds until every
        // worker has reported in — a worker cannot go idle (and so cannot
        // steal) before its first pop, which comes from its own deque, so
        // the all-workers-participate assertion is deterministic.
        let seen: Vec<AtomicBool> = (0..8).map(|_| AtomicBool::new(false)).collect();
        let run = Engine::new(8).run_two_level(
            &[16usize, 16],
            |w| w,
            |_, ctx| {
                seen[ctx.worker].store(true, Ordering::SeqCst);
                // Bounded wait so a scheduling pathology fails the test
                // instead of hanging it.
                for _ in 0..5000 {
                    if seen.iter().all(|b| b.load(Ordering::SeqCst)) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                (ctx.group, ctx.index)
            },
            |g, inners| (g, inners),
            |_, _| {},
        );
        assert!(
            seen.iter().all(|b| b.load(Ordering::SeqCst)),
            "a worker never saw a task, report: {:?}",
            run.report
        );
        for (g, (group, inners)) in run.results.iter().enumerate() {
            assert_eq!(*group, g);
            assert_eq!(inners, &(0..16).map(|i| (g, i)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn completed_groups_stream_before_a_panic_propagates() {
        // Two single-task groups on two workers. Group 1's task blocks
        // until the caller-side hook has delivered group 0, then panics:
        // the hook *must* have fired for group 0 even though the run dies.
        let g0_flushed = AtomicBool::new(false);
        let flushed = Mutex::new(Vec::new());
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Engine::new(2).run_two_level(
                &[1usize, 1],
                |_| (),
                |_, ctx| {
                    if ctx.group == 1 {
                        // Bounded wait so a broken streaming path fails the
                        // test instead of hanging it.
                        for _ in 0..5000 {
                            if g0_flushed.load(Ordering::SeqCst) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        panic!("design point exploded");
                    }
                    ctx.group
                },
                |g, _| g,
                |g, _| {
                    flushed.lock().unwrap().push(g);
                    if g == 0 {
                        g0_flushed.store(true, Ordering::SeqCst);
                    }
                },
            );
        }));
        let err = caught.expect_err("the task panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "design point exploded");
        assert_eq!(*flushed.lock().unwrap(), vec![0], "group 0 streamed first");
    }

    #[test]
    fn inline_panic_propagates_too() {
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Engine::new(1).map_indexed(
                2,
                |_| (),
                |_, ctx| {
                    if ctx.group == 1 {
                        panic!("inline boom");
                    }
                },
            );
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn empty_run_returns_no_results() {
        let run = Engine::new(4).map_indexed(0, |w| w, |_, ctx| ctx.group);
        assert!(run.results.is_empty());
        assert_eq!(run.report.tasks, 0);
        assert_eq!(run.states.len(), 1);
    }

    #[test]
    fn telemetry_counters_record_tasks() {
        let telemetry = Telemetry::enabled();
        let engine = Engine::new(2).with_telemetry(telemetry.clone());
        engine.map_indexed(6, |_| (), |_, ctx| ctx.group);
        let snap = telemetry.metrics_snapshot();
        assert_eq!(snap.counter("engine.tasks"), Some(6));
        assert_eq!(snap.counter("engine.runs"), Some(1));
    }
}
