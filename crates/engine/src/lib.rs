//! Work-stealing execution engine for the HCRF workspace.
//!
//! Every compute surface of the repository — suite sweeps
//! (`hcrf::run_suite`), design-space exploration (`hcrf_explore::explore`)
//! and the bench binaries — funnels its parallelism through this crate
//! instead of rolling its own thread pool. The engine provides four things
//! the flat atomic-counter loops it replaced could not:
//!
//! * **Work stealing across heterogeneous tasks.** Each worker owns a
//!   Chase–Lev-style deque (owner pops the front, thieves batch-steal the
//!   back half; implemented in safe code with short mutex critical
//!   sections). Tasks are *two-level*: callers submit groups (design
//!   points) that decompose into inner tasks (loops), and idle workers
//!   steal loop tasks from a slow point instead of idling behind it.
//!
//! * **A deterministic reduction contract.** Inner results land in
//!   index-ordered slots; the worker finishing a group's last task folds
//!   that index-ordered vector; group results land in group-ordered slots.
//!   Aggregates are therefore **bit-identical for any worker count** —
//!   `tests/engine_equivalence.rs` proves it across 1/2/4/8 workers on
//!   every standard suite × configuration.
//!
//! * **Streaming that survives panics.** Group results are sent to the
//!   *caller's* thread as they complete and handed to the `on_group` hook
//!   there (the explore executor persists them to its result cache). The
//!   channel drains fully before worker panics propagate, so a crash in one
//!   design point can never lose the completed points before it.
//!
//! * **Per-task isolation and retry.** Under the opt-in
//!   [`FailurePolicy::Isolate`], a panicking task is caught
//!   (`catch_unwind`), its worker state rebuilt, and the task retried up to
//!   a bounded number of times; a task that keeps panicking is
//!   *quarantined* — its group folds to `None` and the failure lands in
//!   [`EngineRun::quarantined`] — instead of poisoning the whole run.
//!   Retry decisions are keyed on the task alone (never on worker
//!   history), so results stay bit-identical for any worker count. The
//!   deterministic [`FaultPlan`] drives fault-injection drills through the
//!   same seams.
//!
//! Workers also own caller-defined per-worker state (created by an `init`
//! hook) — the schedulers park a pooled `AttemptArena` there so consecutive
//! loops rebind one allocation instead of rebuilding per loop. The states
//! are returned to the caller, which harvests pool counters into the
//! `engine.arena_rebinds` telemetry counter.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use hcrf_telemetry::{Telemetry, TraceBuf};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Default cap on auto-resolved workers (`threads == 0`). Sweeps are
/// memory-bandwidth-bound well before 16 schedulers run concurrently, and
/// an uncapped resolution on a large shared host oversubscribes it for no
/// wall-time gain. Explicit `threads` requests are never capped; callers
/// needing a different auto cap use [`resolve_workers_capped`].
pub const DEFAULT_WORKER_CAP: usize = 16;

/// Resolve a requested thread count to a concrete worker count: `0` means
/// one worker per available CPU, capped at [`DEFAULT_WORKER_CAP`]; any
/// explicit request is honored verbatim. This is the single home of the
/// resolution logic that used to be copy-pasted across the driver and the
/// explore executor.
pub fn resolve_workers(requested: usize) -> usize {
    resolve_workers_capped(requested, DEFAULT_WORKER_CAP)
}

/// [`resolve_workers`] with an explicit cap on the auto-resolved count.
pub fn resolve_workers_capped(requested: usize, cap: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cap.max(1))
}

/// Identity of one inner task as the engine hands it to the work function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskCtx {
    /// Worker executing the task (`0..workers`). Useful as a trace label;
    /// never use it to influence *results* — which worker runs a task is
    /// scheduling-dependent.
    pub worker: usize,
    /// Group the task belongs to.
    pub group: usize,
    /// Index of the task within its group.
    pub index: usize,
}

/// How the engine responds to a panicking task.
///
/// The retry/quarantine bookkeeping never reaches the task *results*:
/// retries are keyed on the task identity alone (a task that panics on its
/// first attempt panics on its first attempt on every worker count), so an
/// isolated run's completed groups are bit-identical to a fail-fast run's.
/// Counters (`engine.task_retries`, `engine.task_quarantined`) go to
/// telemetry, per the standing thread-count-invisibility invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Propagate the first task panic to the caller (after the completed
    /// groups have streamed to `on_group`). The default, and the historical
    /// behavior.
    #[default]
    FailFast,
    /// Catch a task panic, rebuild the worker's pooled state (a panic can
    /// leave it mid-mutation), and retry the task up to `retries` more
    /// times. A task that exhausts its retries is quarantined: its group's
    /// result is `None` and the failure is reported in
    /// [`EngineRun::quarantined`] instead of poisoning the run.
    Isolate {
        /// Retries after the first failed attempt (total attempts =
        /// `retries + 1`).
        retries: u32,
    },
}

/// One task that exhausted its retries under [`FailurePolicy::Isolate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure {
    /// Group the task belonged to.
    pub group: usize,
    /// Index of the task within its group.
    pub index: usize,
    /// Attempts made (always `retries + 1`).
    pub attempts: u32,
    /// The panic message of the final attempt.
    pub message: String,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A deterministic fault-injection plan for chaos drills and the
/// fault-tolerance test suite.
///
/// Every decision is a pure function of the plan's `seed` and the *identity*
/// of the thing being faulted — a task's `(group, index)` or a store
/// record's key digest — never of time, worker ids or call order. The same
/// plan therefore injects the same faults at 1, 2, 4 or 8 workers, which is
/// what lets `tests/fault_injection.rs` assert bit-identical degraded
/// results across thread counts. Rates are per-mille (`100` = 10%).
///
/// Task panics are split into two classes so one plan exercises both
/// recovery paths: *transient* faults panic only on a task's first attempt
/// (a retry succeeds), *permanent* faults panic on every attempt (the task
/// is quarantined once its retries are exhausted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Per-mille rate of tasks that panic on their first attempt only.
    pub transient_task_panics_per_mille: u32,
    /// Per-mille rate of tasks that panic on every attempt.
    pub permanent_task_panics_per_mille: u32,
    /// Per-mille rate of store appends cut short mid-record (simulated
    /// `kill -9` during a write); honored by the explore result store.
    pub truncated_writes_per_mille: u32,
    /// Per-mille rate of store records corrupted in place after their
    /// checksum is computed (simulated bit rot); honored by the explore
    /// result store.
    pub corrupt_records_per_mille: u32,
}

impl FaultPlan {
    fn decide(&self, domain: u8, a: u64, b: u64, per_mille: u32) -> bool {
        if per_mille == 0 {
            return false;
        }
        let mut h = fnv_bytes(FNV_OFFSET, &self.seed.to_le_bytes());
        h = fnv_bytes(h, &[domain]);
        h = fnv_bytes(h, &a.to_le_bytes());
        h = fnv_bytes(h, &b.to_le_bytes());
        h % 1000 < per_mille as u64
    }

    /// Whether attempt `attempt` of task `(group, index)` should panic.
    pub fn panics_task(&self, group: u64, index: u64, attempt: u32) -> bool {
        if self.decide(0, group, index, self.permanent_task_panics_per_mille) {
            return true;
        }
        attempt == 0 && self.decide(1, group, index, self.transient_task_panics_per_mille)
    }

    /// Whether the append of the record addressed by `digest` should be
    /// truncated mid-write.
    pub fn truncates_write(&self, digest: u64) -> bool {
        self.decide(2, digest, 0, self.truncated_writes_per_mille)
    }

    /// Whether the record addressed by `digest` should be corrupted in
    /// place after its checksum is computed.
    pub fn corrupts_record(&self, digest: u64) -> bool {
        self.decide(3, digest, 0, self.corrupt_records_per_mille)
    }
}

/// Execution counters of one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Workers the run executed on.
    pub workers: usize,
    /// Inner tasks executed (counted once per task, not per retry attempt).
    pub tasks: u64,
    /// Successful batch steals (a thief moving the back half of another
    /// worker's deque into its own).
    pub steals: u64,
}

/// Everything one engine run produced.
#[derive(Debug)]
pub struct EngineRun<R, S> {
    /// Per-group results, in group order (deterministic for any worker
    /// count). `None` marks a group quarantined under
    /// [`FailurePolicy::Isolate`]; under [`FailurePolicy::FailFast`] every
    /// entry is `Some` (a panic would have propagated instead).
    pub results: Vec<Option<R>>,
    /// Tasks that exhausted their retries, sorted by `(group, index)` —
    /// deterministic for any worker count. Empty under
    /// [`FailurePolicy::FailFast`].
    pub quarantined: Vec<TaskFailure>,
    /// The per-worker states, in worker order.
    pub states: Vec<S>,
    /// Execution counters.
    pub report: EngineReport,
}

impl<R, S> EngineRun<R, S> {
    /// Unwrap a run that must have completed every group — the contract of
    /// every fail-fast call site (a task panic there propagates instead of
    /// quarantining). Panics with the failure manifest if any task was
    /// quarantined.
    pub fn expect_complete(self) -> (Vec<R>, Vec<S>, EngineReport) {
        if !self.quarantined.is_empty() {
            panic!(
                "engine run quarantined {} task(s): {:?}",
                self.quarantined.len(),
                self.quarantined
            );
        }
        (
            self.results
                .into_iter()
                .map(|r| r.expect("every group must have folded"))
                .collect(),
            self.states,
            self.report,
        )
    }
}

/// The execution engine: a worker count, a failure policy and a telemetry
/// sink. Construct once per run site; the engine itself holds no threads
/// (workers live only for the duration of one `run_two_level` call).
#[derive(Debug, Clone)]
pub struct Engine {
    workers: usize,
    failure: FailurePolicy,
    fault_plan: Option<FaultPlan>,
    telemetry: Telemetry,
}

/// Sets the poison flag when dropped during a panic, so sibling workers
/// stop spinning for tasks that will never complete and the scope can join
/// (propagating the panic) instead of hanging.
struct PoisonGuard<'a>(&'a AtomicBool);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::SeqCst);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Engine {
    /// An engine with `threads` workers (`0` = auto, see
    /// [`resolve_workers`]), the fail-fast policy and no telemetry.
    pub fn new(threads: usize) -> Self {
        Engine {
            workers: resolve_workers(threads),
            failure: FailurePolicy::default(),
            fault_plan: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry sink: the run publishes `engine.tasks` /
    /// `engine.steals` / `engine.runs` counters (plus
    /// `engine.task_retries` / `engine.task_quarantined` under
    /// [`FailurePolicy::Isolate`]) and records one labeled `worker` span per
    /// worker.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Select how task panics are handled (default
    /// [`FailurePolicy::FailFast`]).
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.failure = policy;
        self
    }

    /// Inject deterministic task panics according to `plan` (store-level
    /// faults in the same plan are honored by the explore result store, not
    /// here). Test/drill seam; without a plan no injection code runs.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The resolved worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured failure policy.
    pub fn failure_policy(&self) -> FailurePolicy {
        self.failure
    }

    /// Execute one task under the failure policy: fail-fast calls straight
    /// through (any panic, injected or real, propagates); isolate catches,
    /// rebuilds the worker state (the panic may have left pooled arenas
    /// mid-mutation) and retries until the task succeeds or exhausts its
    /// attempts.
    fn execute_task<S, T>(
        &self,
        state: &mut S,
        trace: &mut TraceBuf,
        ctx: TaskCtx,
        init: impl Fn(usize) -> S,
        inner: impl Fn(&mut S, TaskCtx) -> T,
    ) -> Result<T, TaskFailure> {
        let inject = |attempt: u32| {
            if let Some(plan) = &self.fault_plan {
                if plan.panics_task(ctx.group as u64, ctx.index as u64, attempt) {
                    panic!(
                        "injected fault: task {}:{} attempt {attempt}",
                        ctx.group, ctx.index
                    );
                }
            }
        };
        let FailurePolicy::Isolate { retries } = self.failure else {
            inject(0);
            return Ok(inner(state, ctx));
        };
        let mut attempt = 0u32;
        loop {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                inject(attempt);
                inner(state, ctx)
            }));
            match caught {
                Ok(value) => return Ok(value),
                Err(payload) => {
                    *state = init(ctx.worker);
                    trace.instant(
                        "task_panic",
                        "engine",
                        &[
                            ("group", ctx.group as i64),
                            ("index", ctx.index as i64),
                            ("attempt", attempt as i64),
                        ],
                    );
                    if attempt < retries {
                        attempt += 1;
                        self.telemetry.counter_add("engine.task_retries", 1);
                    } else {
                        self.telemetry.counter_add("engine.task_quarantined", 1);
                        trace.instant(
                            "task_quarantined",
                            "engine",
                            &[("group", ctx.group as i64), ("index", ctx.index as i64)],
                        );
                        return Err(TaskFailure {
                            group: ctx.group,
                            index: ctx.index,
                            attempts: attempt + 1,
                            message: panic_message(payload.as_ref()),
                        });
                    }
                }
            }
        }
    }

    /// Run a two-level task set: `group_sizes[g]` inner tasks per group
    /// `g`, each executed by `inner` with a per-worker state from `init`,
    /// folded per group by `fold` over the index-ordered inner results, and
    /// streamed to `on_group` on the caller's thread in completion order.
    ///
    /// The determinism contract: `results` holds `fold`'s output in group
    /// order, each fold sees its group's inner results in index order, and
    /// neither depends on the worker count — only `on_group`'s *call order*
    /// (and which worker ran which task) varies between runs.
    ///
    /// The task stream (groups in order, each group's inner tasks
    /// contiguous and in index order) is seeded across the worker deques in
    /// balanced contiguous shares *by task count*, so every worker starts
    /// with work even when a few large groups dominate — seeding whole
    /// groups round-robin used to leave `workers - groups` deques empty
    /// behind steal chains. Stealing (which moves the back half of a deque)
    /// still redistributes a slow share's tail across idle workers.
    ///
    /// If a task panics under the default fail-fast policy, completed
    /// groups still stream to `on_group`, then the panic resumes on the
    /// caller's thread. Under [`FailurePolicy::Isolate`] the task is
    /// retried and, if it keeps panicking, quarantined: every other task of
    /// its group still runs (retry bookkeeping is per-task, so counters and
    /// sibling results stay thread-count-invariant), but the group's fold
    /// is skipped, `on_group` never fires for it, and its result is `None`.
    pub fn run_two_level<S, T, R>(
        &self,
        group_sizes: &[usize],
        init: impl Fn(usize) -> S + Sync,
        inner: impl Fn(&mut S, TaskCtx) -> T + Sync,
        fold: impl Fn(usize, Vec<T>) -> R + Sync,
        mut on_group: impl FnMut(usize, &R),
    ) -> EngineRun<R, S>
    where
        S: Send,
        T: Send,
        R: Send,
    {
        let total_tasks: usize = group_sizes.iter().sum();
        let workers = self.workers.min(total_tasks).max(1);
        let mut results: Vec<Option<R>> = group_sizes.iter().map(|_| None).collect();

        // Empty groups fold immediately (in group order) on this thread:
        // they have no tasks to schedule and must not hold up the drain.
        for (g, &size) in group_sizes.iter().enumerate() {
            if size == 0 {
                let r = fold(g, Vec::new());
                on_group(g, &r);
                results[g] = Some(r);
            }
        }

        let run = if workers <= 1 {
            self.run_inline(group_sizes, &mut results, init, inner, fold, &mut on_group)
        } else {
            self.run_stealing(
                workers,
                group_sizes,
                &mut results,
                init,
                inner,
                fold,
                &mut on_group,
            )
        };
        let (states, report, mut quarantined) = run;
        quarantined.sort_by_key(|f| (f.group, f.index));
        if quarantined.is_empty() {
            debug_assert!(results.iter().all(|r| r.is_some()));
        }

        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("engine.runs", 1);
            self.telemetry.counter_add("engine.tasks", report.tasks);
            self.telemetry.counter_add("engine.steals", report.steals);
        }
        EngineRun {
            results,
            quarantined,
            states,
            report,
        }
    }

    /// The `workers <= 1` path: everything runs on the caller's thread, in
    /// group and index order (tests pin the streaming hook's inline
    /// ordering to exactly this sequence). Every task of a quarantined
    /// group still runs, exactly as on the stealing path, so retry
    /// counters and sibling failures are thread-count-invariant.
    #[allow(clippy::too_many_arguments)]
    fn run_inline<S, T, R>(
        &self,
        group_sizes: &[usize],
        results: &mut [Option<R>],
        init: impl Fn(usize) -> S,
        inner: impl Fn(&mut S, TaskCtx) -> T,
        fold: impl Fn(usize, Vec<T>) -> R,
        on_group: &mut impl FnMut(usize, &R),
    ) -> (Vec<S>, EngineReport, Vec<TaskFailure>) {
        let mut state = init(0);
        let mut trace = self.telemetry.trace_buf();
        let mut tasks = 0u64;
        let mut quarantined = Vec::new();
        for (g, &size) in group_sizes.iter().enumerate() {
            if size == 0 {
                continue; // already folded
            }
            let mut inners: Vec<Option<T>> = Vec::with_capacity(size);
            let mut failed = false;
            for index in 0..size {
                tasks += 1;
                let ctx = TaskCtx {
                    worker: 0,
                    group: g,
                    index,
                };
                match self.execute_task(&mut state, &mut trace, ctx, &init, &inner) {
                    Ok(value) => inners.push(Some(value)),
                    Err(failure) => {
                        failed = true;
                        quarantined.push(failure);
                        inners.push(None);
                    }
                }
            }
            if !failed {
                let r = fold(
                    g,
                    inners
                        .into_iter()
                        .map(|v| v.expect("group complete"))
                        .collect(),
                );
                on_group(g, &r);
                results[g] = Some(r);
            }
        }
        self.telemetry.flush(&mut trace);
        (
            vec![state],
            EngineReport {
                workers: 1,
                tasks,
                steals: 0,
            },
            quarantined,
        )
    }

    /// The work-stealing path. See the crate docs for the worker model.
    #[allow(clippy::too_many_arguments)]
    fn run_stealing<S, T, R>(
        &self,
        workers: usize,
        group_sizes: &[usize],
        results: &mut [Option<R>],
        init: impl Fn(usize) -> S + Sync,
        inner: impl Fn(&mut S, TaskCtx) -> T + Sync,
        fold: impl Fn(usize, Vec<T>) -> R + Sync,
        on_group: &mut impl FnMut(usize, &R),
    ) -> (Vec<S>, EngineReport, Vec<TaskFailure>)
    where
        S: Send,
        T: Send,
        R: Send,
    {
        // Seed the deques: the task stream (groups in order, inner tasks in
        // index order) splits into balanced contiguous shares by *task*
        // count — `workers <= total` (the caller clamps), so every worker
        // starts with at least one task no matter how few groups there are.
        let total: usize = group_sizes.iter().sum();
        let mut seeded: Vec<VecDeque<(u32, u32)>> = (0..workers).map(|_| VecDeque::new()).collect();
        let mut t = 0usize;
        for (g, &size) in group_sizes.iter().enumerate() {
            for index in 0..size {
                seeded[t * workers / total].push_back((g as u32, index as u32));
                t += 1;
            }
        }
        let deques: Vec<Mutex<VecDeque<(u32, u32)>>> = seeded.into_iter().map(Mutex::new).collect();

        // Per-group reduction state: index-ordered slots + a countdown the
        // last finisher trips to fold and send. A quarantined task marks
        // its group failed; the last finisher of a failed group discards
        // the partial slots instead of folding.
        let slots: Vec<Mutex<Vec<Option<T>>>> = group_sizes
            .iter()
            .map(|&size| Mutex::new((0..size).map(|_| None).collect()))
            .collect();
        let group_left: Vec<AtomicUsize> =
            group_sizes.iter().map(|&s| AtomicUsize::new(s)).collect();
        let group_failed: Vec<AtomicBool> =
            group_sizes.iter().map(|_| AtomicBool::new(false)).collect();
        let failures: Mutex<Vec<TaskFailure>> = Mutex::new(Vec::new());
        let remaining = AtomicUsize::new(group_sizes.iter().sum());
        let poisoned = AtomicBool::new(false);
        let steals = AtomicU64::new(0);
        let tasks_run = AtomicU64::new(0);
        let (tx, rx) = mpsc::channel::<(usize, R)>();

        let mut states: Vec<Option<S>> = (0..workers).map(|_| None).collect();
        let mut panic_payload = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let tx = tx.clone();
                    let deques = &deques;
                    let slots = &slots;
                    let group_left = &group_left;
                    let group_failed = &group_failed;
                    let failures = &failures;
                    let remaining = &remaining;
                    let poisoned = &poisoned;
                    let steals = &steals;
                    let tasks_run = &tasks_run;
                    let init = &init;
                    let inner = &inner;
                    let fold = &fold;
                    let engine = &*self;
                    let telemetry = self.telemetry.clone();
                    scope.spawn(move || {
                        let _guard = PoisonGuard(poisoned);
                        let mut trace = telemetry.trace_buf();
                        let t0 = trace.now_ns();
                        let mut state = init(me);
                        let mut my_tasks = 0u64;
                        let mut my_steals = 0u64;
                        'work: loop {
                            // Drain own deque from the front.
                            let task = deques[me].lock().expect("deque poisoned").pop_front();
                            let (g, index) = match task {
                                Some(t) => t,
                                None => {
                                    // Steal the back half of the first
                                    // non-empty sibling deque.
                                    let mut stolen = false;
                                    for k in 1..workers {
                                        let victim = (me + k) % workers;
                                        let mut q = deques[victim].lock().expect("deque poisoned");
                                        let n = q.len();
                                        if n == 0 {
                                            continue;
                                        }
                                        // Back half, rounded up (n == 1
                                        // takes the lone task).
                                        let batch = q.split_off(n / 2);
                                        drop(q);
                                        if !batch.is_empty() {
                                            *deques[me].lock().expect("deque poisoned") = batch;
                                            my_steals += 1;
                                            stolen = true;
                                            break;
                                        }
                                    }
                                    if stolen {
                                        continue 'work;
                                    }
                                    if remaining.load(Ordering::SeqCst) == 0
                                        || poisoned.load(Ordering::SeqCst)
                                    {
                                        break 'work;
                                    }
                                    // Tasks are in flight on other workers;
                                    // re-scan after yielding.
                                    std::thread::yield_now();
                                    continue 'work;
                                }
                            };
                            let (g, index) = (g as usize, index as usize);
                            let ctx = TaskCtx {
                                worker: me,
                                group: g,
                                index,
                            };
                            let outcome =
                                engine.execute_task(&mut state, &mut trace, ctx, init, inner);
                            my_tasks += 1;
                            match outcome {
                                Ok(value) => {
                                    slots[g].lock().expect("slots poisoned")[index] = Some(value);
                                }
                                Err(failure) => {
                                    group_failed[g].store(true, Ordering::SeqCst);
                                    failures.lock().expect("failures poisoned").push(failure);
                                }
                            }
                            if group_left[g].fetch_sub(1, Ordering::SeqCst) == 1 {
                                if group_failed[g].load(Ordering::SeqCst) {
                                    // Quarantined group: discard the partial
                                    // slots; the caller sees `None` plus the
                                    // failure manifest.
                                    slots[g]
                                        .lock()
                                        .expect("slots poisoned")
                                        .iter_mut()
                                        .for_each(|s| *s = None);
                                } else {
                                    // Last task of the group: fold the
                                    // index-ordered slots and stream the
                                    // result.
                                    let inners: Vec<T> = slots[g]
                                        .lock()
                                        .expect("slots poisoned")
                                        .iter_mut()
                                        .map(|s| s.take().expect("group complete"))
                                        .collect();
                                    let r = fold(g, inners);
                                    let _ = tx.send((g, r));
                                }
                            }
                            remaining.fetch_sub(1, Ordering::SeqCst);
                        }
                        steals.fetch_add(my_steals, Ordering::Relaxed);
                        tasks_run.fetch_add(my_tasks, Ordering::Relaxed);
                        trace.span_labeled(
                            "worker",
                            "engine",
                            t0,
                            Some(&format!("w{me}")),
                            &[("tasks", my_tasks as i64), ("steals", my_steals as i64)],
                        );
                        telemetry.flush(&mut trace);
                        state
                    })
                })
                .collect();
            drop(tx);

            // Drain on the caller's thread until every sender is gone. A
            // worker panic drops its sender mid-run, so this loop always
            // terminates — after delivering every group that *did* complete
            // (the flush-before-panic guarantee `on_group` relies on).
            for (g, r) in rx {
                on_group(g, &r);
                results[g] = Some(r);
            }
            for (me, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(state) => states[me] = Some(state),
                    Err(payload) => panic_payload = Some(payload),
                }
            }
        });
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        (
            states
                .into_iter()
                .map(|s| s.expect("worker joined"))
                .collect(),
            EngineReport {
                workers,
                tasks: tasks_run.load(Ordering::Relaxed),
                steals: steals.load(Ordering::Relaxed),
            },
            failures.into_inner().expect("failures poisoned"),
        )
    }

    /// Flat map over `0..count` (size-1 groups): `f(state, index)` lands in
    /// index-ordered results. The degenerate two-level run every
    /// single-level caller (the suite driver, `bench_sched`) uses.
    pub fn map_indexed<S, T>(
        &self,
        count: usize,
        init: impl Fn(usize) -> S + Sync,
        f: impl Fn(&mut S, TaskCtx) -> T + Sync,
    ) -> EngineRun<T, S>
    where
        S: Send,
        T: Send,
    {
        self.map_indexed_each(count, init, f, |_, _| {})
    }

    /// [`Engine::map_indexed`] with a streaming hook invoked on the
    /// caller's thread as each result completes (completion order; index
    /// order on the inline path).
    pub fn map_indexed_each<S, T>(
        &self,
        count: usize,
        init: impl Fn(usize) -> S + Sync,
        f: impl Fn(&mut S, TaskCtx) -> T + Sync,
        on_result: impl FnMut(usize, &T),
    ) -> EngineRun<T, S>
    where
        S: Send,
        T: Send,
    {
        let sizes = vec![1usize; count];
        self.run_two_level(
            &sizes,
            init,
            f,
            |_, mut inners: Vec<T>| inners.pop().expect("size-1 group"),
            on_result,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn resolve_workers_honors_explicit_and_caps_auto() {
        assert_eq!(resolve_workers(3), 3);
        assert_eq!(resolve_workers(64), 64); // explicit requests uncapped
        let auto = resolve_workers(0);
        assert!((1..=DEFAULT_WORKER_CAP).contains(&auto));
        assert_eq!(resolve_workers_capped(0, 1), 1);
        assert!(resolve_workers_capped(0, 0) >= 1); // cap floor
    }

    #[test]
    fn inline_path_runs_in_index_order() {
        let engine = Engine::new(1);
        let mut seen = Vec::new();
        let run = engine.map_indexed_each(
            5,
            |w| w,
            |state, ctx| {
                assert_eq!(*state, 0);
                assert_eq!(ctx.worker, 0);
                ctx.group * 10
            },
            |i, r| seen.push((i, *r)),
        );
        // The inline hook fires in exact index order.
        assert_eq!(seen, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        let (results, states, report) = run.expect_complete();
        assert_eq!(results, vec![0, 10, 20, 30, 40]);
        assert_eq!(states.len(), 1);
        assert_eq!(report.tasks, 5);
        assert_eq!(report.steals, 0);
    }

    #[test]
    fn parallel_results_are_index_ordered_and_complete() {
        let engine = Engine::new(4);
        let mut seen = Vec::new();
        let run = engine.map_indexed_each(
            32,
            |w| w,
            |_, ctx| {
                // Uneven task costs exercise out-of-order completion.
                if ctx.group % 7 == 0 {
                    std::thread::sleep(Duration::from_millis(3));
                }
                ctx.group as u64 * 2
            },
            |i, r| seen.push((i, *r)),
        );
        let (results, mut states, report) = run.expect_complete();
        assert_eq!(results, (0..32).map(|i| i * 2).collect::<Vec<u64>>());
        // The hook saw every result exactly once (in whatever order)...
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..32usize).map(|i| (i, i as u64 * 2)).collect::<Vec<_>>()
        );
        // ...and every worker state came back.
        states.sort_unstable();
        assert_eq!(states, vec![0, 1, 2, 3]);
        assert_eq!(report.tasks, 32);
    }

    #[test]
    fn two_level_folds_index_ordered_groups_identically_for_any_worker_count() {
        let sizes = [3usize, 0, 5, 1, 4];
        let run_with = |workers: usize| {
            Engine::new(workers)
                .run_two_level(
                    &sizes,
                    |_| (),
                    |_, ctx| format!("{}:{}", ctx.group, ctx.index),
                    |g, inners| (g, inners.join(",")),
                    |_, _| {},
                )
                .expect_complete()
        };
        let (one, _, _) = run_with(1);
        for workers in [2, 4, 8] {
            let (many, _, report) = run_with(workers);
            assert_eq!(one, many, "workers={workers}");
            assert_eq!(report.tasks, 13);
        }
        assert_eq!(one[2], (2, "2:0,2:1,2:2,2:3,2:4".to_string()));
        assert_eq!(one[1], (1, String::new()));
    }

    #[test]
    fn idle_workers_steal_from_loaded_deques() {
        // Worker 0's seeded share (tasks 0..4) is slow and everything else
        // is instant: the other workers drain their own shares long before
        // the slow share finishes and must steal its tail to participate.
        let engine = Engine::new(4);
        let run = engine.run_two_level(
            &[16usize],
            |w| w,
            |_, ctx| {
                if ctx.index < 4 {
                    std::thread::sleep(Duration::from_millis(20));
                }
                ctx.index
            },
            |_, inners| inners,
            |_, _| {},
        );
        assert_eq!(
            run.results[0].as_ref().unwrap(),
            &(0..16).collect::<Vec<usize>>()
        );
        assert!(
            run.report.steals > 0,
            "expected at least one steal, report: {:?}",
            run.report
        );
    }

    #[test]
    fn task_balanced_seeding_gives_every_worker_work() {
        // Two groups of 16 tasks on 8 workers: seeding whole groups
        // round-robin would fill only two deques and leave six workers
        // queueing behind steal chains; the task-balanced shares seed all
        // eight deques with four tasks each. Every task holds until every
        // worker has reported in — a worker cannot go idle (and so cannot
        // steal) before its first pop, which comes from its own deque, so
        // the all-workers-participate assertion is deterministic.
        let seen: Vec<AtomicBool> = (0..8).map(|_| AtomicBool::new(false)).collect();
        let run = Engine::new(8).run_two_level(
            &[16usize, 16],
            |w| w,
            |_, ctx| {
                seen[ctx.worker].store(true, Ordering::SeqCst);
                // Bounded wait so a scheduling pathology fails the test
                // instead of hanging it.
                for _ in 0..5000 {
                    if seen.iter().all(|b| b.load(Ordering::SeqCst)) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                (ctx.group, ctx.index)
            },
            |g, inners| (g, inners),
            |_, _| {},
        );
        assert!(
            seen.iter().all(|b| b.load(Ordering::SeqCst)),
            "a worker never saw a task, report: {:?}",
            run.report
        );
        let (results, _, _) = run.expect_complete();
        for (g, (group, inners)) in results.iter().enumerate() {
            assert_eq!(*group, g);
            assert_eq!(inners, &(0..16).map(|i| (g, i)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn completed_groups_stream_before_a_panic_propagates() {
        // Two single-task groups on two workers. Group 1's task blocks
        // until the caller-side hook has delivered group 0, then panics:
        // the hook *must* have fired for group 0 even though the run dies.
        let g0_flushed = AtomicBool::new(false);
        let flushed = Mutex::new(Vec::new());
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Engine::new(2).run_two_level(
                &[1usize, 1],
                |_| (),
                |_, ctx| {
                    if ctx.group == 1 {
                        // Bounded wait so a broken streaming path fails the
                        // test instead of hanging it.
                        for _ in 0..5000 {
                            if g0_flushed.load(Ordering::SeqCst) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        panic!("design point exploded");
                    }
                    ctx.group
                },
                |g, _| g,
                |g, _| {
                    flushed.lock().unwrap().push(g);
                    if g == 0 {
                        g0_flushed.store(true, Ordering::SeqCst);
                    }
                },
            );
        }));
        let err = caught.expect_err("the task panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(msg, "design point exploded");
        assert_eq!(*flushed.lock().unwrap(), vec![0], "group 0 streamed first");
    }

    #[test]
    fn inline_panic_propagates_too() {
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Engine::new(1).map_indexed(
                2,
                |_| (),
                |_, ctx| {
                    if ctx.group == 1 {
                        panic!("inline boom");
                    }
                },
            );
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn empty_run_returns_no_results() {
        let run = Engine::new(4).map_indexed(0, |w| w, |_, ctx| ctx.group);
        assert!(run.results.is_empty());
        assert_eq!(run.report.tasks, 0);
        assert_eq!(run.states.len(), 1);
        assert!(run.quarantined.is_empty());
    }

    #[test]
    fn telemetry_counters_record_tasks() {
        let telemetry = Telemetry::enabled();
        let engine = Engine::new(2).with_telemetry(telemetry.clone());
        engine.map_indexed(6, |_| (), |_, ctx| ctx.group);
        let snap = telemetry.metrics_snapshot();
        assert_eq!(snap.counter("engine.tasks"), Some(6));
        assert_eq!(snap.counter("engine.runs"), Some(1));
    }

    // --- failure policy & fault injection ---------------------------------

    /// Tasks with a transient fault succeed on retry; the run completes
    /// with no quarantine and the retry counter matches the faulted tasks.
    #[test]
    fn isolate_retries_transient_panics_to_success() {
        for workers in [1usize, 4] {
            let telemetry = Telemetry::enabled();
            let plan = FaultPlan {
                seed: 7,
                transient_task_panics_per_mille: 1000, // every task, attempt 0 only
                ..Default::default()
            };
            let run = Engine::new(workers)
                .with_telemetry(telemetry.clone())
                .with_failure_policy(FailurePolicy::Isolate { retries: 1 })
                .with_fault_plan(plan)
                .map_indexed(6, |_| (), |_, ctx| ctx.group * 3);
            let (results, _, report) = run.expect_complete();
            assert_eq!(results, (0..6).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(report.tasks, 6);
            let snap = telemetry.metrics_snapshot();
            assert_eq!(snap.counter("engine.task_retries"), Some(6));
            assert_eq!(snap.counter("engine.task_quarantined"), None);
        }
    }

    /// A permanently panicking task exhausts its retries and quarantines
    /// its group; sibling groups complete; the manifest is deterministic
    /// across worker counts.
    #[test]
    fn isolate_quarantines_permanent_panics_deterministically() {
        let run_at = |workers: usize| {
            let telemetry = Telemetry::enabled();
            let run = Engine::new(workers)
                .with_telemetry(telemetry.clone())
                .with_failure_policy(FailurePolicy::Isolate { retries: 2 })
                .run_two_level(
                    &[2usize, 2, 2],
                    |_| (),
                    |_, ctx| {
                        if ctx.group == 1 && ctx.index == 1 {
                            panic!("permanent fault");
                        }
                        (ctx.group, ctx.index)
                    },
                    |g, inners| (g, inners),
                    |_, _| {},
                );
            let retries = telemetry
                .metrics_snapshot()
                .counter("engine.task_retries")
                .unwrap_or(0);
            let quarantined = telemetry
                .metrics_snapshot()
                .counter("engine.task_quarantined")
                .unwrap_or(0);
            (run, retries, quarantined)
        };
        let (baseline, base_retries, base_quarantined) = run_at(1);
        assert_eq!(baseline.quarantined.len(), 1);
        let failure = &baseline.quarantined[0];
        assert_eq!((failure.group, failure.index), (1, 1));
        assert_eq!(failure.attempts, 3); // 1 + 2 retries
        assert_eq!(failure.message, "permanent fault");
        assert!(baseline.results[0].is_some());
        assert!(baseline.results[1].is_none(), "failed group must be None");
        assert!(baseline.results[2].is_some());
        assert_eq!(base_retries, 2);
        assert_eq!(base_quarantined, 1);
        for workers in [2, 4] {
            let (run, retries, quarantined) = run_at(workers);
            assert_eq!(run.quarantined, baseline.quarantined, "workers={workers}");
            assert_eq!(retries, base_retries, "workers={workers}");
            assert_eq!(quarantined, base_quarantined, "workers={workers}");
            for (a, b) in baseline.results.iter().zip(run.results.iter()) {
                assert_eq!(a.is_some(), b.is_some());
            }
        }
    }

    /// `on_group` fires only for completed groups, and the cache-persist
    /// path therefore never sees a quarantined group's partial fold.
    #[test]
    fn on_group_skips_quarantined_groups() {
        let mut streamed = Vec::new();
        let run = Engine::new(2)
            .with_failure_policy(FailurePolicy::Isolate { retries: 0 })
            .run_two_level(
                &[1usize, 1, 1],
                |_| (),
                |_, ctx| {
                    if ctx.group == 1 {
                        panic!("boom");
                    }
                    ctx.group
                },
                |g, _| g,
                |g, _| streamed.push(g),
            );
        streamed.sort_unstable();
        assert_eq!(streamed, vec![0, 2]);
        assert_eq!(run.quarantined.len(), 1);
    }

    /// Under isolate, a caught panic rebuilds the worker's pooled state
    /// before the retry — a half-mutated pool never leaks into another
    /// task.
    #[test]
    fn isolate_rebuilds_worker_state_after_a_panic() {
        // State is a counter of tasks run since (re)build; the task panics
        // once when the state is "dirty" from a previous increment, which
        // only terminates if the rebuild actually resets it.
        let builds = AtomicU64::new(0);
        let run = Engine::new(1)
            .with_failure_policy(FailurePolicy::Isolate { retries: 1 })
            .map_indexed(
                3,
                |_| {
                    builds.fetch_add(1, Ordering::SeqCst);
                    0u64
                },
                |state, ctx| {
                    *state += 1;
                    if ctx.group == 1 && *state > 1 {
                        panic!("dirty state");
                    }
                    *state
                },
            );
        let (results, _, _) = run.expect_complete();
        // Task 0 ran on the fresh state (1); task 1 panicked on the dirty
        // state, got a rebuilt one and returned 1; task 2 saw 2.
        assert_eq!(results, vec![1, 1, 2]);
        assert!(builds.load(Ordering::SeqCst) >= 2, "state never rebuilt");
    }

    /// Fail-fast with an injected fault behaves exactly like a real panic:
    /// it propagates.
    #[test]
    fn fail_fast_propagates_injected_faults() {
        let plan = FaultPlan {
            seed: 1,
            permanent_task_panics_per_mille: 1000,
            ..Default::default()
        };
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Engine::new(1)
                .with_fault_plan(plan)
                .map_indexed(2, |_| (), |_, ctx| ctx.group);
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn fault_plan_is_deterministic_and_rate_bounded() {
        let plan = FaultPlan {
            seed: 0xFA17,
            transient_task_panics_per_mille: 100,
            permanent_task_panics_per_mille: 50,
            truncated_writes_per_mille: 100,
            corrupt_records_per_mille: 0,
        };
        // Pure function of identity: same inputs, same answer.
        for g in 0..50u64 {
            for i in 0..4u64 {
                assert_eq!(plan.panics_task(g, i, 0), plan.panics_task(g, i, 0));
                assert_eq!(plan.panics_task(g, i, 3), plan.panics_task(g, i, 3));
            }
            assert_eq!(plan.truncates_write(g), plan.truncates_write(g));
        }
        // Zero rate never fires.
        assert!((0..1000u64).all(|d| !plan.corrupts_record(d)));
        // Rates land in the right ballpark over a large sample.
        let panics = (0..10_000u64)
            .filter(|&g| plan.panics_task(g, 0, 0))
            .count();
        assert!(
            (500..2800).contains(&panics),
            "~15% expected, got {panics}/10000"
        );
        // Transient faults clear after attempt 0; permanent ones persist.
        let transient = (0..10_000u64)
            .find(|&g| plan.panics_task(g, 0, 0) && !plan.panics_task(g, 0, 1))
            .expect("no transient fault in sample");
        assert!(!plan.panics_task(transient, 0, 5));
        let permanent = (0..10_000u64)
            .find(|&g| plan.panics_task(g, 0, 5))
            .expect("no permanent fault in sample");
        assert!(plan.panics_task(permanent, 0, 0));
    }
}
