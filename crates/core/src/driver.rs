//! Parallel scheduling of a loop suite for one machine configuration.
//!
//! The suite sweep runs on the [`hcrf_engine`] work-stealing engine: one
//! task per loop, one pooled [`ArenaPool`] per worker (so consecutive loops
//! rebind one `AttemptArena` instead of rebuilding), and the aggregation
//! folds the index-ordered results so the [`SuiteRun`] is bit-identical for
//! any thread count.

use hcrf_engine::{Engine, FailurePolicy, TaskFailure};
use hcrf_ir::Loop;
use hcrf_machine::stable::StableHasher;
use hcrf_machine::{MachineConfig, RfOrganization};
use hcrf_memsim::CacheConfig;
use hcrf_perf::{LoopPerformance, SuiteAggregate};
use hcrf_rfmodel::{evaluate, HardwareEval};
use hcrf_sched::{ArenaPool, IterativeScheduler, PhaseTimings, ScheduleResult, SchedulerParams};
use hcrf_telemetry::Telemetry;

/// A machine configuration together with its hardware evaluation
/// (clock cycle, per-configuration latencies, area).
#[derive(Debug, Clone)]
pub struct ConfiguredMachine {
    /// The machine description, with its latencies already rescaled to the
    /// configuration's clock (Table 5, last column).
    pub machine: MachineConfig,
    /// The hardware evaluation the latencies came from.
    pub hardware: HardwareEval,
}

impl ConfiguredMachine {
    /// Build from an `xCy-Sz` configuration name using the paper's baseline
    /// core (8 FUs, 4 memory ports) and the hardware model.
    pub fn from_name(name: &str) -> Result<Self, String> {
        let rf = RfOrganization::parse(name).map_err(|e| e.to_string())?;
        Ok(Self::from_rf(rf))
    }

    /// Build from a parsed register-file organization.
    pub fn from_rf(rf: RfOrganization) -> Self {
        let base = MachineConfig::paper_baseline(rf);
        let hardware = evaluate(&base);
        let machine = base.with_latencies(hardware.latencies);
        ConfiguredMachine { machine, hardware }
    }

    /// Build keeping the baseline (S128) latencies instead of rescaling them
    /// — used by the static studies (Table 3, Figure 4) where all
    /// configurations must be compared at equal latencies.
    pub fn with_baseline_latencies(rf: RfOrganization) -> Self {
        let machine = MachineConfig::paper_baseline(rf);
        let hardware = evaluate(&machine);
        ConfiguredMachine { machine, hardware }
    }

    /// The configuration name (`"4C16S64"`).
    pub fn name(&self) -> String {
        self.machine.rf.to_string()
    }

    /// Cache configuration for the real-memory scenario: geometry from the
    /// paper, latencies from this configuration's clock.
    pub fn cache_config(&self) -> CacheConfig {
        CacheConfig::with_latencies(
            self.machine.latencies.load,
            self.machine.latencies.load_miss,
        )
    }
}

/// Options of a suite run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Scheduler parameters.
    pub scheduler: SchedulerParams,
    /// Simulate the memory hierarchy and account stall cycles
    /// (the real-memory scenario of Figure 6).
    pub real_memory: bool,
    /// Maximum iterations to simulate per loop in the cache model
    /// (stalls are scaled up to the full trip count).
    pub max_simulated_iterations: u64,
    /// Number of worker threads (0 = one per available CPU).
    pub threads: usize,
    /// How the engine responds to a panicking loop task: fail fast (the
    /// default) or isolate-and-retry, quarantining loops that keep
    /// panicking instead of poisoning the sweep. Retry bookkeeping is
    /// per-task, so results stay bit-identical for any thread count.
    pub failure: FailurePolicy,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scheduler: SchedulerParams::default().without_schedule(),
            real_memory: false,
            max_simulated_iterations: 64,
            threads: 0,
            failure: FailurePolicy::default(),
        }
    }
}

impl RunOptions {
    /// Fast options for tests and examples: keep schedules, single thread.
    pub fn fast() -> Self {
        RunOptions {
            scheduler: SchedulerParams::default(),
            threads: 1,
            ..Default::default()
        }
    }

    /// Enable the real-memory scenario (cache simulation + binding
    /// prefetching in the scheduler).
    pub fn with_real_memory(mut self) -> Self {
        self.real_memory = true;
        self.scheduler.binding_prefetch = true;
        // The memory simulation needs the final schedule.
        self.scheduler.keep_schedule = true;
        self
    }

    /// Use the given number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Use the given engine failure policy.
    pub fn with_failure(mut self, failure: FailurePolicy) -> Self {
        self.failure = failure;
        self
    }
}

/// Per-loop outcome of a suite run.
#[derive(Debug, Clone)]
pub struct LoopRun {
    /// Index of the loop in the suite.
    pub index: usize,
    /// The schedule produced.
    pub schedule: ScheduleResult,
    /// Derived performance numbers.
    pub performance: LoopPerformance,
    /// Where the scheduler's wall time went for this loop.
    pub phases: PhaseTimings,
}

/// Outcome of scheduling a whole suite on one configuration.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// The configuration that was evaluated.
    pub config: ConfiguredMachine,
    /// Per-loop outcomes, in suite order. Under
    /// [`FailurePolicy::Isolate`] a quarantined loop is absent here (and
    /// listed in [`SuiteRun::quarantined`]); under the default fail-fast
    /// policy this always holds every loop.
    pub loops: Vec<LoopRun>,
    /// Loops whose task kept panicking and was quarantined, sorted by loop
    /// index. Always empty under [`FailurePolicy::FailFast`].
    pub quarantined: Vec<TaskFailure>,
    /// Aggregated metrics (quarantined loops excluded).
    pub aggregate: SuiteAggregate,
    /// Wall-clock seconds spent scheduling (the paper's "Sch. time").
    pub scheduling_seconds: f64,
    /// Per-phase scheduler wall time summed over every loop of the suite.
    pub phases: PhaseTimings,
}

/// Schedule every loop of `suite` for `config`, in parallel, and aggregate.
pub fn run_suite(config: &ConfiguredMachine, suite: &[Loop], options: &RunOptions) -> SuiteRun {
    run_suite_traced(config, suite, options, &Telemetry::disabled())
}

/// [`run_suite`] with a telemetry sink: each loop's schedule publishes its
/// counters and phase timings, the memory simulation publishes its traffic,
/// and (when tracing is on) every per-loop shard is recorded as a labeled
/// `loop` span in the trace ring.
pub fn run_suite_traced(
    config: &ConfiguredMachine,
    suite: &[Loop],
    options: &RunOptions,
    telemetry: &Telemetry,
) -> SuiteRun {
    let started = std::time::Instant::now();
    let scheduler = IterativeScheduler::new(config.machine.clone(), options.scheduler)
        .with_telemetry(telemetry.clone());
    let engine = Engine::new(options.threads)
        .with_telemetry(telemetry.clone())
        .with_failure_policy(options.failure);
    let run = engine.map_indexed(
        suite.len(),
        |_| ArenaPool::new(),
        |pool, ctx| {
            run_loop_traced(
                &scheduler,
                config,
                &suite[ctx.group],
                ctx.group,
                options,
                telemetry,
                pool,
                ctx.worker,
            )
        },
    );
    // Quarantined loops (isolate policy only) drop out of `loops` and the
    // aggregate; the manifest records them. Suite order is preserved.
    let loops: Vec<LoopRun> = run.results.into_iter().flatten().collect();
    let quarantined = run.quarantined;
    let (aggregate, phases) = fold_suite_aggregate(config, &loops);
    let scheduling_seconds = started.elapsed().as_secs_f64();
    if telemetry.is_enabled() {
        telemetry.counter_add("driver.suite_runs", 1);
        telemetry.counter_add("driver.loops", loops.len() as u64);
        telemetry.counter_add("driver.failed_loops", aggregate.failed_loops as u64);
        telemetry.gauge_set("driver.scheduling_seconds", scheduling_seconds);
        let rebinds: u64 = run.states.iter().map(|p| p.rebinds()).sum();
        telemetry.counter_add("engine.arena_rebinds", rebinds);
    }
    SuiteRun {
        config: config.clone(),
        loops,
        quarantined,
        aggregate,
        scheduling_seconds,
        phases,
    }
}

/// Schedule (and, in the real-memory scenario, simulate) ONE loop of a
/// suite: the engine's inner task, shared by [`run_suite_traced`] and the
/// explore executor's point-decomposed sweeps. The `worker` id labels the
/// `loop` trace span; the pooled arena in `pool` makes consecutive calls on
/// one worker rebind allocations instead of rebuilding them.
#[allow(clippy::too_many_arguments)]
pub fn run_loop_traced(
    scheduler: &IterativeScheduler,
    config: &ConfiguredMachine,
    l: &Loop,
    index: usize,
    options: &RunOptions,
    telemetry: &Telemetry,
    pool: &mut ArenaPool,
    worker: usize,
) -> LoopRun {
    let mut buf = telemetry.trace_buf();
    let t0 = buf.now_ns();
    let (schedule, phases) = scheduler.schedule_with_timings_pooled(&l.ddg, pool);
    let stall = if options.real_memory && !schedule.failed {
        let accesses = crate::memory::kernel_accesses(
            &schedule,
            &config.machine,
            options.scheduler.binding_prefetch,
        );
        let sim = hcrf_memsim::simulate_kernel(
            &accesses,
            schedule.ii,
            l.iterations,
            config.cache_config(),
            options.max_simulated_iterations,
        );
        sim.publish(telemetry);
        sim.scaled_stalls(l.iterations)
    } else {
        0
    };
    let performance = LoopPerformance::from_schedule(&schedule, l, stall);
    buf.span_labeled(
        "loop",
        "driver",
        t0,
        Some(&l.ddg.name),
        &[
            ("index", index as i64),
            ("worker", worker as i64),
            ("ii", schedule.ii as i64),
            ("stall_cycles", stall as i64),
        ],
    );
    telemetry.flush(&mut buf);
    LoopRun {
        index,
        schedule,
        performance,
        phases,
    }
}

/// Fold index-ordered per-loop results into the suite aggregate and the
/// summed phase timings. The fold order is fixed (suite order), which is
/// what makes [`SuiteRun::aggregate`] bit-identical for any thread count.
pub fn fold_suite_aggregate(
    config: &ConfiguredMachine,
    loops: &[LoopRun],
) -> (SuiteAggregate, PhaseTimings) {
    let mut aggregate = SuiteAggregate::new(config.name(), config.hardware.clock_ns);
    let mut phases = PhaseTimings::default();
    for run in loops {
        aggregate.add(&run.performance);
        phases.absorb(&run.phases);
    }
    (aggregate, phases)
}

/// Stable, content-addressed fingerprint of a loop suite.
///
/// Two suites fingerprint identically exactly when every loop has the same
/// name, execution counts and dependence graph (nodes, memory descriptors and
/// edges, in order). The exploration result cache keys on this value, so it
/// must not depend on pointer identity, hash-map iteration order or the
/// platform — it walks the graph vectors in their construction order and
/// hashes primitive fields through [`StableHasher`].
pub fn suite_fingerprint(suite: &[Loop]) -> u64 {
    let mut h = StableHasher::new();
    h.write_usize(suite.len());
    for l in suite {
        h.write_str(&l.ddg.name);
        h.write_u64(l.iterations);
        h.write_u64(l.invocations);
        h.write_f64(l.weight);
        h.write_usize(l.ddg.num_nodes());
        h.write_usize(l.ddg.num_edges());
        for (_, n) in l.ddg.nodes() {
            h.write_str(n.kind.mnemonic());
            h.write_bool(n.reads_invariant);
            match n.mem {
                None => h.write_u8(0),
                Some(m) => {
                    h.write_u8(1);
                    h.write_u32(m.base);
                    h.write_i64(m.offset);
                    h.write_i64(m.stride);
                    h.write_u32(m.size);
                }
            }
        }
        for (_, e) in l.ddg.edges() {
            h.write_u32(e.src.0);
            h.write_u32(e.dst.0);
            // Explicit discriminants: the encoding must not move with enum
            // refactors (a Debug-string encoding would).
            h.write_u8(match e.kind {
                hcrf_ir::DepKind::Flow => 0,
                hcrf_ir::DepKind::Anti => 1,
                hcrf_ir::DepKind::Output => 2,
                hcrf_ir::DepKind::Mem => 3,
            });
            h.write_u32(e.distance);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_workloads::small_suite;

    #[test]
    fn configured_machine_from_name() {
        let c = ConfiguredMachine::from_name("4C32S16").unwrap();
        assert_eq!(c.name(), "4C32S16");
        // Table 5: FU latency 7 cycles for this configuration.
        assert_eq!(c.machine.latencies.fadd, 7);
        assert!(ConfiguredMachine::from_name("bogus").is_err());
    }

    #[test]
    fn run_small_suite_monolithic() {
        let loops = small_suite(0);
        let cfg = ConfiguredMachine::from_name("S128").unwrap();
        let run = run_suite(&cfg, &loops, &RunOptions::fast());
        assert_eq!(run.loops.len(), loops.len());
        assert_eq!(run.aggregate.loops, loops.len());
        assert_eq!(run.aggregate.failed_loops, 0);
        assert!(run.aggregate.sum_ii > 0);
        assert!(run.scheduling_seconds >= 0.0);
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let loops = small_suite(4);
        let cfg = ConfiguredMachine::from_name("2C32S32").unwrap();
        let serial = run_suite(&cfg, &loops, &RunOptions::fast());
        let parallel = run_suite(
            &cfg,
            &loops,
            &RunOptions {
                threads: 4,
                scheduler: SchedulerParams::default(),
                ..Default::default()
            },
        );
        assert_eq!(serial.aggregate.sum_ii, parallel.aggregate.sum_ii);
        assert_eq!(
            serial.aggregate.useful_cycles,
            parallel.aggregate.useful_cycles
        );
        assert_eq!(
            serial.aggregate.memory_traffic,
            parallel.aggregate.memory_traffic
        );
    }

    #[test]
    fn suite_fingerprint_is_stable_and_content_sensitive() {
        let a = small_suite(8);
        let b = small_suite(8);
        assert_eq!(suite_fingerprint(&a), suite_fingerprint(&b));
        let shorter = small_suite(7);
        assert_ne!(suite_fingerprint(&a), suite_fingerprint(&shorter));
        let mut retimed = small_suite(8);
        retimed[0].iterations += 1;
        assert_ne!(suite_fingerprint(&a), suite_fingerprint(&retimed));
    }

    #[test]
    fn real_memory_adds_stalls() {
        let loops = small_suite(0);
        let cfg = ConfiguredMachine::from_name("S64").unwrap();
        let ideal = run_suite(&cfg, &loops, &RunOptions::fast());
        let real = run_suite(&cfg, &loops, &RunOptions::fast().with_real_memory());
        assert_eq!(ideal.aggregate.stall_cycles, 0);
        assert!(real.aggregate.stall_cycles > 0);
    }
}
