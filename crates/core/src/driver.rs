//! Parallel scheduling of a loop suite for one machine configuration.

use hcrf_ir::Loop;
use hcrf_machine::stable::StableHasher;
use hcrf_machine::{MachineConfig, RfOrganization};
use hcrf_memsim::CacheConfig;
use hcrf_perf::{LoopPerformance, SuiteAggregate};
use hcrf_rfmodel::{evaluate, HardwareEval};
use hcrf_sched::{IterativeScheduler, PhaseTimings, ScheduleResult, SchedulerParams};
use hcrf_telemetry::Telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A machine configuration together with its hardware evaluation
/// (clock cycle, per-configuration latencies, area).
#[derive(Debug, Clone)]
pub struct ConfiguredMachine {
    /// The machine description, with its latencies already rescaled to the
    /// configuration's clock (Table 5, last column).
    pub machine: MachineConfig,
    /// The hardware evaluation the latencies came from.
    pub hardware: HardwareEval,
}

impl ConfiguredMachine {
    /// Build from an `xCy-Sz` configuration name using the paper's baseline
    /// core (8 FUs, 4 memory ports) and the hardware model.
    pub fn from_name(name: &str) -> Result<Self, String> {
        let rf = RfOrganization::parse(name).map_err(|e| e.to_string())?;
        Ok(Self::from_rf(rf))
    }

    /// Build from a parsed register-file organization.
    pub fn from_rf(rf: RfOrganization) -> Self {
        let base = MachineConfig::paper_baseline(rf);
        let hardware = evaluate(&base);
        let machine = base.with_latencies(hardware.latencies);
        ConfiguredMachine { machine, hardware }
    }

    /// Build keeping the baseline (S128) latencies instead of rescaling them
    /// — used by the static studies (Table 3, Figure 4) where all
    /// configurations must be compared at equal latencies.
    pub fn with_baseline_latencies(rf: RfOrganization) -> Self {
        let machine = MachineConfig::paper_baseline(rf);
        let hardware = evaluate(&machine);
        ConfiguredMachine { machine, hardware }
    }

    /// The configuration name (`"4C16S64"`).
    pub fn name(&self) -> String {
        self.machine.rf.to_string()
    }

    /// Cache configuration for the real-memory scenario: geometry from the
    /// paper, latencies from this configuration's clock.
    pub fn cache_config(&self) -> CacheConfig {
        CacheConfig::with_latencies(
            self.machine.latencies.load,
            self.machine.latencies.load_miss,
        )
    }
}

/// Options of a suite run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Scheduler parameters.
    pub scheduler: SchedulerParams,
    /// Simulate the memory hierarchy and account stall cycles
    /// (the real-memory scenario of Figure 6).
    pub real_memory: bool,
    /// Maximum iterations to simulate per loop in the cache model
    /// (stalls are scaled up to the full trip count).
    pub max_simulated_iterations: u64,
    /// Number of worker threads (0 = one per available CPU).
    pub threads: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scheduler: SchedulerParams::default().without_schedule(),
            real_memory: false,
            max_simulated_iterations: 64,
            threads: 0,
        }
    }
}

impl RunOptions {
    /// Fast options for tests and examples: keep schedules, single thread.
    pub fn fast() -> Self {
        RunOptions {
            scheduler: SchedulerParams::default(),
            threads: 1,
            ..Default::default()
        }
    }

    /// Enable the real-memory scenario (cache simulation + binding
    /// prefetching in the scheduler).
    pub fn with_real_memory(mut self) -> Self {
        self.real_memory = true;
        self.scheduler.binding_prefetch = true;
        // The memory simulation needs the final schedule.
        self.scheduler.keep_schedule = true;
        self
    }

    /// Use the given number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Per-loop outcome of a suite run.
#[derive(Debug, Clone)]
pub struct LoopRun {
    /// Index of the loop in the suite.
    pub index: usize,
    /// The schedule produced.
    pub schedule: ScheduleResult,
    /// Derived performance numbers.
    pub performance: LoopPerformance,
    /// Where the scheduler's wall time went for this loop.
    pub phases: PhaseTimings,
}

/// Outcome of scheduling a whole suite on one configuration.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// The configuration that was evaluated.
    pub config: ConfiguredMachine,
    /// Per-loop outcomes, in suite order.
    pub loops: Vec<LoopRun>,
    /// Aggregated metrics.
    pub aggregate: SuiteAggregate,
    /// Wall-clock seconds spent scheduling (the paper's "Sch. time").
    pub scheduling_seconds: f64,
    /// Per-phase scheduler wall time summed over every loop of the suite.
    pub phases: PhaseTimings,
}

/// Schedule every loop of `suite` for `config`, in parallel, and aggregate.
pub fn run_suite(config: &ConfiguredMachine, suite: &[Loop], options: &RunOptions) -> SuiteRun {
    run_suite_traced(config, suite, options, &Telemetry::disabled())
}

/// [`run_suite`] with a telemetry sink: each loop's schedule publishes its
/// counters and phase timings, the memory simulation publishes its traffic,
/// and (when tracing is on) every per-loop shard is recorded as a labeled
/// `loop` span in the trace ring.
pub fn run_suite_traced(
    config: &ConfiguredMachine,
    suite: &[Loop],
    options: &RunOptions,
    telemetry: &Telemetry,
) -> SuiteRun {
    let started = std::time::Instant::now();
    let scheduler = IterativeScheduler::new(config.machine.clone(), options.scheduler)
        .with_telemetry(telemetry.clone());
    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16)
    } else {
        options.threads
    };
    let process = |i: usize| -> LoopRun {
        let l = &suite[i];
        let mut buf = telemetry.trace_buf();
        let t0 = buf.now_ns();
        let (schedule, phases) = scheduler.schedule_with_timings(&l.ddg);
        let stall = if options.real_memory && !schedule.failed {
            let accesses = crate::memory::kernel_accesses(
                &schedule,
                &config.machine,
                options.scheduler.binding_prefetch,
            );
            let sim = hcrf_memsim::simulate_kernel(
                &accesses,
                schedule.ii,
                l.iterations,
                config.cache_config(),
                options.max_simulated_iterations,
            );
            sim.publish(telemetry);
            sim.scaled_stalls(l.iterations)
        } else {
            0
        };
        let performance = LoopPerformance::from_schedule(&schedule, l, stall);
        buf.span_labeled(
            "loop",
            "driver",
            t0,
            Some(&l.ddg.name),
            &[
                ("index", i as i64),
                ("ii", schedule.ii as i64),
                ("stall_cycles", stall as i64),
            ],
        );
        telemetry.flush(&mut buf);
        LoopRun {
            index: i,
            schedule,
            performance,
            phases,
        }
    };

    let loops = parallel_map_indexed(suite.len(), threads, process);
    let mut aggregate = SuiteAggregate::new(config.name(), config.hardware.clock_ns);
    let mut phases = PhaseTimings::default();
    for run in &loops {
        aggregate.add(&run.performance);
        phases.absorb(&run.phases);
    }
    let scheduling_seconds = started.elapsed().as_secs_f64();
    if telemetry.is_enabled() {
        telemetry.counter_add("driver.suite_runs", 1);
        telemetry.counter_add("driver.loops", loops.len() as u64);
        telemetry.counter_add("driver.failed_loops", aggregate.failed_loops as u64);
        telemetry.gauge_set("driver.scheduling_seconds", scheduling_seconds);
    }
    SuiteRun {
        config: config.clone(),
        loops,
        aggregate,
        scheduling_seconds,
        phases,
    }
}

/// Run `f` over `0..count` across `threads` workers and return the results
/// in index order.
///
/// Workers claim indices from a shared atomic counter and send
/// `(index, result)` over a channel into per-index slots, so no lock is ever
/// contended and the output order is deterministic. A worker panic
/// propagates when the thread scope joins. With `threads <= 1` the map runs
/// inline on the caller's thread.
pub fn parallel_map_indexed<T: Send>(
    count: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    parallel_map_indexed_each(count, threads, f, |_, _| {})
}

/// [`parallel_map_indexed`] with a hook invoked on the caller's thread as
/// each result lands (in completion order, not index order) — used to stream
/// results to disk while the sweep is still running.
pub fn parallel_map_indexed_each<T: Send>(
    count: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
    mut on_result: impl FnMut(usize, &T),
) -> Vec<T> {
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    if threads <= 1 || count <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            let value = f(i);
            on_result(i, &value);
            *slot = Some(value);
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|s| {
            for _ in 0..threads.min(count) {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let value = f(i);
                    if tx.send((i, value)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, value) in rx {
                on_result(i, &value);
                slots[i] = Some(value);
            }
        });
    }
    slots
        .into_iter()
        .map(|v| v.expect("every index must have been processed"))
        .collect()
}

/// Stable, content-addressed fingerprint of a loop suite.
///
/// Two suites fingerprint identically exactly when every loop has the same
/// name, execution counts and dependence graph (nodes, memory descriptors and
/// edges, in order). The exploration result cache keys on this value, so it
/// must not depend on pointer identity, hash-map iteration order or the
/// platform — it walks the graph vectors in their construction order and
/// hashes primitive fields through [`StableHasher`].
pub fn suite_fingerprint(suite: &[Loop]) -> u64 {
    let mut h = StableHasher::new();
    h.write_usize(suite.len());
    for l in suite {
        h.write_str(&l.ddg.name);
        h.write_u64(l.iterations);
        h.write_u64(l.invocations);
        h.write_f64(l.weight);
        h.write_usize(l.ddg.num_nodes());
        h.write_usize(l.ddg.num_edges());
        for (_, n) in l.ddg.nodes() {
            h.write_str(n.kind.mnemonic());
            h.write_bool(n.reads_invariant);
            match n.mem {
                None => h.write_u8(0),
                Some(m) => {
                    h.write_u8(1);
                    h.write_u32(m.base);
                    h.write_i64(m.offset);
                    h.write_i64(m.stride);
                    h.write_u32(m.size);
                }
            }
        }
        for (_, e) in l.ddg.edges() {
            h.write_u32(e.src.0);
            h.write_u32(e.dst.0);
            // Explicit discriminants: the encoding must not move with enum
            // refactors (a Debug-string encoding would).
            h.write_u8(match e.kind {
                hcrf_ir::DepKind::Flow => 0,
                hcrf_ir::DepKind::Anti => 1,
                hcrf_ir::DepKind::Output => 2,
                hcrf_ir::DepKind::Mem => 3,
            });
            h.write_u32(e.distance);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_workloads::small_suite;

    #[test]
    fn configured_machine_from_name() {
        let c = ConfiguredMachine::from_name("4C32S16").unwrap();
        assert_eq!(c.name(), "4C32S16");
        // Table 5: FU latency 7 cycles for this configuration.
        assert_eq!(c.machine.latencies.fadd, 7);
        assert!(ConfiguredMachine::from_name("bogus").is_err());
    }

    #[test]
    fn run_small_suite_monolithic() {
        let loops = small_suite(0);
        let cfg = ConfiguredMachine::from_name("S128").unwrap();
        let run = run_suite(&cfg, &loops, &RunOptions::fast());
        assert_eq!(run.loops.len(), loops.len());
        assert_eq!(run.aggregate.loops, loops.len());
        assert_eq!(run.aggregate.failed_loops, 0);
        assert!(run.aggregate.sum_ii > 0);
        assert!(run.scheduling_seconds >= 0.0);
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let loops = small_suite(4);
        let cfg = ConfiguredMachine::from_name("2C32S32").unwrap();
        let serial = run_suite(&cfg, &loops, &RunOptions::fast());
        let parallel = run_suite(
            &cfg,
            &loops,
            &RunOptions {
                threads: 4,
                scheduler: SchedulerParams::default(),
                ..Default::default()
            },
        );
        assert_eq!(serial.aggregate.sum_ii, parallel.aggregate.sum_ii);
        assert_eq!(
            serial.aggregate.useful_cycles,
            parallel.aggregate.useful_cycles
        );
        assert_eq!(
            serial.aggregate.memory_traffic,
            parallel.aggregate.memory_traffic
        );
    }

    #[test]
    fn suite_fingerprint_is_stable_and_content_sensitive() {
        let a = small_suite(8);
        let b = small_suite(8);
        assert_eq!(suite_fingerprint(&a), suite_fingerprint(&b));
        let shorter = small_suite(7);
        assert_ne!(suite_fingerprint(&a), suite_fingerprint(&shorter));
        let mut retimed = small_suite(8);
        retimed[0].iterations += 1;
        assert_ne!(suite_fingerprint(&a), suite_fingerprint(&retimed));
    }

    #[test]
    fn real_memory_adds_stalls() {
        let loops = small_suite(0);
        let cfg = ConfiguredMachine::from_name("S64").unwrap();
        let ideal = run_suite(&cfg, &loops, &RunOptions::fast());
        let real = run_suite(&cfg, &loops, &RunOptions::fast().with_real_memory());
        assert_eq!(ideal.aggregate.stall_cycles, 0);
        assert!(real.aggregate.stall_cycles > 0);
    }
}
