//! Figure 6: real-memory evaluation with selective binding prefetching —
//! useful and stall cycles (and times) relative to the monolithic S64
//! baseline's useful cycles.

use crate::driver::{run_suite, ConfiguredMachine, RunOptions};
use crate::experiments::FIG6_CONFIGS;
use hcrf_ir::Loop;
use serde::{Deserialize, Serialize};

/// One bar pair of Figure 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Bar {
    /// Configuration name.
    pub config: String,
    /// Useful cycles relative to S64's useful cycles.
    pub relative_useful_cycles: f64,
    /// Stall cycles relative to S64's useful cycles.
    pub relative_stall_cycles: f64,
    /// Useful time relative to S64's useful time.
    pub relative_useful_time: f64,
    /// Stall time relative to S64's useful time.
    pub relative_stall_time: f64,
    /// Speedup (total time) over S64.
    pub speedup: f64,
}

/// Run the Figure 6 experiment (real memory, binding prefetching).
pub fn run(suite: &[Loop], options: &RunOptions) -> Vec<Fig6Bar> {
    run_configs(suite, options, &FIG6_CONFIGS)
}

/// Run over an arbitrary configuration list (S64 is the normaliser).
pub fn run_configs(suite: &[Loop], options: &RunOptions, configs: &[&str]) -> Vec<Fig6Bar> {
    let opts = options.with_real_memory();
    let mut names: Vec<&str> = configs.to_vec();
    if !names.contains(&"S64") {
        names.push("S64");
    }
    let runs: Vec<(ConfiguredMachine, crate::driver::SuiteRun)> = names
        .iter()
        .map(|name| {
            let cfg = ConfiguredMachine::from_name(name).expect("valid configuration");
            let run = run_suite(&cfg, suite, &opts);
            (cfg, run)
        })
        .collect();
    let (base_cfg, base_run) = runs
        .iter()
        .find(|(c, _)| c.name() == "S64")
        .expect("baseline present");
    let base_useful_cycles = base_run.aggregate.useful_cycles.max(1) as f64;
    let base_useful_time = base_useful_cycles * base_cfg.hardware.clock_ns;
    let base_total_time = (base_run.aggregate.total_cycles() as f64) * base_cfg.hardware.clock_ns;
    let mut bars: Vec<Fig6Bar> = runs
        .iter()
        .filter(|(c, _)| configs.contains(&c.name().as_str()))
        .map(|(cfg, run)| {
            let clk = cfg.hardware.clock_ns;
            let useful = run.aggregate.useful_cycles as f64;
            let stall = run.aggregate.stall_cycles as f64;
            Fig6Bar {
                config: cfg.name(),
                relative_useful_cycles: useful / base_useful_cycles,
                relative_stall_cycles: stall / base_useful_cycles,
                relative_useful_time: useful * clk / base_useful_time,
                relative_stall_time: stall * clk / base_useful_time,
                speedup: base_total_time / ((useful + stall) * clk),
            }
        })
        .collect();
    bars.sort_by_key(|b| {
        configs
            .iter()
            .position(|c| *c == b.config)
            .unwrap_or(usize::MAX)
    });
    bars
}

/// Format the bars as a table (cycles and time, split useful/stall).
pub fn format(bars: &[Fig6Bar]) -> String {
    let mut out = String::from(
        "Config     CyclesUseful CyclesStall | TimeUseful TimeStall | Speedup(vs S64)\n",
    );
    for b in bars {
        out.push_str(&format!(
            "{:<10} {:11.3} {:11.3} | {:10.3} {:9.3} | {:7.3}\n",
            b.config,
            b.relative_useful_cycles,
            b.relative_stall_cycles,
            b.relative_useful_time,
            b.relative_stall_time,
            b.speedup,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_workloads::small_suite;

    #[test]
    fn partitioned_rfs_close_the_gap_on_time_under_real_memory() {
        // On the reduced kernel suite (recurrence heavy) the clock advantage
        // does not always fully offset the extra cycles, but the time picture
        // must be a large improvement over the cycle picture and stay in the
        // same ballpark as the baseline. The full-suite run (fig6 bench)
        // reproduces the paper's >1 speedups.
        let suite = small_suite(0);
        let bars = run_configs(&suite, &RunOptions::fast(), &["S64", "8C16S16"]);
        let s64 = bars.iter().find(|b| b.config == "S64").unwrap();
        let h8 = bars.iter().find(|b| b.config == "8C16S16").unwrap();
        // Baseline is its own normaliser.
        assert!((s64.relative_useful_cycles - 1.0).abs() < 1e-9);
        assert!((s64.relative_useful_time - 1.0).abs() < 1e-9);
        // The hierarchical-clustered machine needs more cycles...
        assert!(h8.relative_useful_cycles >= s64.relative_useful_cycles);
        // ...but its faster clock recovers most (or all) of the difference.
        assert!(
            h8.relative_useful_time < 0.6 * h8.relative_useful_cycles,
            "time {} vs cycles {}",
            h8.relative_useful_time,
            h8.relative_useful_cycles
        );
        assert!(h8.speedup > 0.7, "speedup {}", h8.speedup);
    }
}
