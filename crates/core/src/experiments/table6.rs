//! Table 6: ideal-memory performance of the 15 register-file configurations
//! (execution cycles, memory traffic, execution time and speedup relative to
//! the monolithic S64 baseline).

use crate::driver::{run_suite, ConfiguredMachine, RunOptions};
use crate::experiments::TABLE5_CONFIGS;
use hcrf_ir::Loop;
use serde::{Deserialize, Serialize};

/// One row of Table 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6Row {
    /// Configuration name.
    pub config: String,
    /// lp-sp ports of the configuration.
    pub lp_sp: (u32, u32),
    /// Total execution cycles over the suite.
    pub execution_cycles: u64,
    /// Total memory traffic (accesses) over the suite.
    pub memory_traffic: u64,
    /// Execution time relative to S64 (< 1 is faster).
    pub relative_time: f64,
    /// Speedup relative to S64 (> 1 is faster).
    pub speedup: f64,
    /// Total register file area in Mλ².
    pub area: f64,
    /// Clock period in ns.
    pub clock_ns: f64,
    /// Number of loops that failed to schedule.
    pub failed_loops: usize,
}

/// Run the Table 6 sweep (ideal memory: no stall cycles).
pub fn run(suite: &[Loop], options: &RunOptions) -> Vec<Table6Row> {
    run_configs(suite, options, &TABLE5_CONFIGS)
}

/// Run the sweep over an arbitrary set of configurations
/// (the baseline `S64` is added if missing, since it normalises the table).
pub fn run_configs(suite: &[Loop], options: &RunOptions, configs: &[&str]) -> Vec<Table6Row> {
    let mut names: Vec<&str> = configs.to_vec();
    if !names.contains(&"S64") {
        names.push("S64");
    }
    let runs: Vec<(ConfiguredMachine, crate::driver::SuiteRun)> = names
        .iter()
        .map(|name| {
            let cfg = ConfiguredMachine::from_name(name).expect("valid configuration");
            let run = run_suite(&cfg, suite, options);
            (cfg, run)
        })
        .collect();
    let baseline = runs
        .iter()
        .find(|(c, _)| c.name() == "S64")
        .map(|(_, r)| r.aggregate.clone())
        .expect("baseline S64 present");
    let mut rows: Vec<Table6Row> = runs
        .iter()
        .filter(|(c, _)| configs.contains(&c.name().as_str()))
        .map(|(cfg, run)| Table6Row {
            config: cfg.name(),
            lp_sp: (cfg.machine.lp, cfg.machine.sp),
            execution_cycles: run.aggregate.total_cycles(),
            memory_traffic: run.aggregate.memory_traffic,
            relative_time: run.aggregate.relative_time(&baseline),
            speedup: run.aggregate.speedup_vs(&baseline),
            area: cfg.hardware.total_area,
            clock_ns: cfg.hardware.clock_ns,
            failed_loops: run.aggregate.failed_loops,
        })
        .collect();
    // Keep the caller's ordering.
    rows.sort_by_key(|r| {
        configs
            .iter()
            .position(|c| *c == r.config)
            .unwrap_or(usize::MAX)
    });
    rows
}

/// Format rows like the paper's Table 6.
pub fn format(rows: &[Table6Row]) -> String {
    let mut out = String::from(
        "Config    lp-sp   ExeC        MemTrf      ExeT(rel)  Speedup   Area(Mλ²)  Clk(ns)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<9} {}-{}   {:>11} {:>11}  {:8.3}  {:7.3}   {:8.2}  {:6.3}\n",
            r.config,
            r.lp_sp.0,
            r.lp_sp.1,
            r.execution_cycles,
            r.memory_traffic,
            r.relative_time,
            r.speedup,
            r.area,
            r.clock_ns,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_workloads::small_suite;

    #[test]
    fn hierarchical_clustered_wins_on_time_but_not_cycles() {
        let suite = small_suite(0);
        let rows = run_configs(&suite, &RunOptions::fast(), &["S64", "8C16S16"]);
        let s64 = rows.iter().find(|r| r.config == "S64").unwrap();
        let h8 = rows.iter().find(|r| r.config == "8C16S16").unwrap();
        assert_eq!(s64.failed_loops, 0);
        assert_eq!(h8.failed_loops, 0);
        // More cycles on the partitioned machine...
        assert!(h8.execution_cycles >= s64.execution_cycles);
        // ...but the 3x faster clock wins overall (paper: 1.96x).
        assert!(h8.speedup > 1.0, "speedup {}", h8.speedup);
        assert!((s64.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_bank_removes_spill_traffic() {
        let suite = small_suite(0);
        let rows = run_configs(&suite, &RunOptions::fast(), &["S32", "4C32S16", "S128"]);
        let s32 = rows.iter().find(|r| r.config == "S32").unwrap();
        let hier = rows.iter().find(|r| r.config == "4C32S16").unwrap();
        let s128 = rows.iter().find(|r| r.config == "S128").unwrap();
        // The small monolithic RF spills; the hierarchical organization's
        // traffic stays at (or near) the big monolithic RF's minimum.
        assert!(s32.memory_traffic >= s128.memory_traffic);
        assert!(hier.memory_traffic <= s32.memory_traffic);
    }
}
