//! One module per table / figure of the paper's evaluation.
//!
//! Every experiment takes the loop suite (and, where relevant, run options)
//! and returns structured rows; the bench binaries in `crates/bench` print
//! them in the same layout as the paper, and the integration tests assert
//! the qualitative claims on reduced suites.

pub mod fig1;
pub mod fig4;
pub mod fig6;
pub mod hardware;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table6;

/// The 15 register-file configurations evaluated in Tables 5 and 6,
/// in the paper's order.
pub const TABLE5_CONFIGS: [&str; 15] = [
    "S128", "S64", "S32", "1C64S32", "1C32S64", "2C64", "2C32", "2C64S32", "2C32S32", "4C64",
    "4C32", "4C32S16", "4C16S16", "8C32S16", "8C16S16",
];

/// The configurations shown in Figure 6 (real-memory evaluation).
pub const FIG6_CONFIGS: [&str; 7] = [
    "S64", "2C64", "4C32", "1C32S64", "2C32S32", "4C32S16", "8C16S16",
];
