//! Table 4: MIRS_HC against the non-iterative scheduler for hierarchical
//! non-clustered register files ([36] in the paper).

use hcrf_ir::Loop;
use hcrf_machine::{Capacity, MachineConfig, RfOrganization};
use hcrf_sched::{schedule_loop, schedule_loop_baseline36, SchedulerParams};
use serde::{Deserialize, Serialize};

/// Aggregate comparison between the two schedulers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table4Summary {
    /// Loops where the baseline achieves a smaller II than MIRS_HC.
    pub baseline_better: usize,
    /// Loops where both achieve the same II.
    pub equal: usize,
    /// Loops where MIRS_HC achieves a smaller II.
    pub baseline_worse: usize,
    /// ΣII of the baseline over loops where it is better.
    pub baseline_better_sum: (u64, u64),
    /// ΣII over loops where they are equal (same for both).
    pub equal_sum: u64,
    /// ΣII of (baseline, MIRS_HC) over loops where the baseline is worse.
    pub baseline_worse_sum: (u64, u64),
    /// Total ΣII of the baseline scheduler.
    pub total_baseline: u64,
    /// Total ΣII of MIRS_HC.
    pub total_mirs_hc: u64,
}

/// The hierarchical non-clustered machine the comparison runs on
/// (unbounded banks so register capacity does not interfere).
pub fn comparison_machine() -> MachineConfig {
    MachineConfig::paper_baseline(RfOrganization::Hierarchical {
        clusters: 1,
        cluster_regs: Capacity::Unbounded,
        shared_regs: Capacity::Unbounded,
    })
}

/// Run the comparison over a suite.
pub fn run(suite: &[Loop]) -> Table4Summary {
    let machine = comparison_machine();
    let params = SchedulerParams::default().without_schedule();
    let mut summary = Table4Summary::default();
    for l in suite {
        let mirs = schedule_loop(&l.ddg, &machine, &params);
        let base = schedule_loop_baseline36(&l.ddg, &machine);
        let mirs_ii = mirs.ii as u64;
        let base_ii = base.ii as u64;
        summary.total_baseline += base_ii;
        summary.total_mirs_hc += mirs_ii;
        if base_ii < mirs_ii {
            summary.baseline_better += 1;
            summary.baseline_better_sum.0 += base_ii;
            summary.baseline_better_sum.1 += mirs_ii;
        } else if base_ii == mirs_ii {
            summary.equal += 1;
            summary.equal_sum += base_ii;
        } else {
            summary.baseline_worse += 1;
            summary.baseline_worse_sum.0 += base_ii;
            summary.baseline_worse_sum.1 += mirs_ii;
        }
    }
    summary
}

/// Format the summary like the paper's table.
pub fn format(s: &Table4Summary) -> String {
    let total = s.baseline_better + s.equal + s.baseline_worse;
    format!(
        "[36] vs MIRS_HC                 #loops   ΣII[36]   ΣII MIRS_HC\n\
         [36] better than MIRS_HC     {:>8}  {:>8}   {:>8}\n\
         [36] equal as MIRS_HC        {:>8}  {:>8}   {:>8}\n\
         [36] worse than MIRS_HC      {:>8}  {:>8}   {:>8}\n\
         Total                        {:>8}  {:>8}   {:>8}\n",
        s.baseline_better,
        s.baseline_better_sum.0,
        s.baseline_better_sum.1,
        s.equal,
        s.equal_sum,
        s.equal_sum,
        s.baseline_worse,
        s.baseline_worse_sum.0,
        s.baseline_worse_sum.1,
        total,
        s.total_baseline,
        s.total_mirs_hc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_workloads::small_suite;

    #[test]
    fn mirs_hc_total_not_worse_than_baseline() {
        let suite = small_suite(0);
        let s = run(&suite);
        assert_eq!(s.baseline_better + s.equal + s.baseline_worse, suite.len());
        // The paper's headline: MIRS_HC reduces the total ΣII.
        assert!(
            s.total_mirs_hc <= s.total_baseline,
            "MIRS_HC {} vs baseline {}",
            s.total_mirs_hc,
            s.total_baseline
        );
        // Most loops should be equal (both achieve MII).
        assert!(s.equal > suite.len() / 2);
    }

    #[test]
    fn format_contains_counts() {
        let s = Table4Summary {
            baseline_better: 1,
            equal: 2,
            baseline_worse: 3,
            ..Default::default()
        };
        let txt = format(&s);
        assert!(txt.contains("Total"));
        assert!(txt.contains("MIRS_HC"));
    }
}
