//! Tables 2 and 5: hardware evaluation (access time, area, logic depth,
//! clock cycle and per-configuration latencies) of the register file
//! organizations, comparing the analytical model against the paper's
//! published CACTI 3.0 values.

use crate::experiments::TABLE5_CONFIGS;
use hcrf_machine::{MachineConfig, RfOrganization};
use hcrf_rfmodel::{evaluate_with, AnalyticRfModel, ClockModel, HardwareEval};
use serde::{Deserialize, Serialize};

/// One row of the hardware evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareRow {
    /// Configuration name.
    pub config: String,
    /// LoadR / StoreR ports (lp-sp) used by the configuration.
    pub lp: u32,
    /// StoreR ports.
    pub sp: u32,
    /// Evaluation using the paper's published values where available.
    pub reference: HardwareEval,
    /// Evaluation using the analytical model only.
    pub analytic: HardwareEval,
}

impl HardwareRow {
    /// Relative error of the analytical clock cycle against the reference.
    pub fn clock_error(&self) -> f64 {
        (self.analytic.clock_ns - self.reference.clock_ns).abs() / self.reference.clock_ns
    }

    /// Relative error of the analytical total area against the reference.
    pub fn area_error(&self) -> f64 {
        (self.analytic.total_area - self.reference.total_area).abs() / self.reference.total_area
    }
}

/// Evaluate one configuration.
pub fn row(name: &str) -> HardwareRow {
    let rf = RfOrganization::parse(name).expect("valid configuration");
    let machine = MachineConfig::paper_baseline(rf);
    let reference = evaluate_with(
        &machine,
        &AnalyticRfModel::at_100nm(),
        &ClockModel::at_100nm(),
        true,
    );
    let analytic = evaluate_with(
        &machine,
        &AnalyticRfModel::at_100nm(),
        &ClockModel::at_100nm(),
        false,
    );
    HardwareRow {
        config: name.to_string(),
        lp: machine.lp,
        sp: machine.sp,
        reference,
        analytic,
    }
}

/// Table 2: the three equally-sized organizations.
pub fn table2() -> Vec<HardwareRow> {
    ["S128", "4C32", "1C64S64"].iter().map(|n| row(n)).collect()
}

/// Table 5: the full 15-configuration design space.
pub fn table5() -> Vec<HardwareRow> {
    TABLE5_CONFIGS.iter().map(|n| row(n)).collect()
}

/// Format rows in the layout of Table 5.
pub fn format(rows: &[HardwareRow]) -> String {
    let mut out = String::from(
        "Config    lp-sp  AccC(ns) AccS(ns)  Area(Mλ²)  FO4  Clk(ns)  Mem/FU lat   [model Clk / Area, err]\n",
    );
    for r in rows {
        let acc_c = r.reference.cluster_bank.access_ns;
        let acc_s = r
            .reference
            .shared_bank
            .map(|b| format!("{:8.3}", b.access_ns))
            .unwrap_or_else(|| "     ---".to_string());
        out.push_str(&format!(
            "{:<9} {}-{}   {:8.3} {}  {:9.2}  {:>3}  {:7.3}  {:>2} / {:<2}      [{:6.3} / {:6.2}, {:4.1}% / {:4.1}%]\n",
            r.config,
            r.lp,
            r.sp,
            acc_c,
            acc_s,
            r.reference.total_area,
            r.reference.logic_depth,
            r.reference.clock_ns,
            r.reference.latencies.load,
            r.reference.latencies.fadd,
            r.analytic.clock_ns,
            r.analytic.total_area,
            100.0 * r.clock_error(),
            100.0 * r.area_error(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_has_15_rows_in_paper_order() {
        let rows = table5();
        assert_eq!(rows.len(), 15);
        assert_eq!(rows[0].config, "S128");
        assert_eq!(rows[14].config, "8C16S16");
    }

    #[test]
    fn reference_rows_match_published_clock() {
        let rows = table5();
        let s128 = &rows[0];
        assert!((s128.reference.clock_ns - 1.181).abs() < 1e-9);
        let c8 = &rows[14];
        assert!((c8.reference.clock_ns - 0.389).abs() < 1e-9);
    }

    #[test]
    fn analytic_model_errors_are_bounded() {
        for r in table5() {
            assert!(
                r.clock_error() < 0.45,
                "{}: clock error {:.2}",
                r.config,
                r.clock_error()
            );
            assert!(
                r.area_error() < 1.5,
                "{}: area error {:.2}",
                r.config,
                r.area_error()
            );
        }
    }

    #[test]
    fn clustering_reduces_clock_and_area_in_both_models() {
        let rows = table2();
        let s128 = &rows[0];
        let c4 = &rows[1];
        assert!(c4.reference.clock_ns < s128.reference.clock_ns);
        assert!(c4.analytic.clock_ns < s128.analytic.clock_ns);
        assert!(c4.reference.total_area < s128.reference.total_area);
        assert!(c4.analytic.total_area < s128.analytic.total_area);
    }

    #[test]
    fn format_contains_every_config() {
        let s = format(&table5());
        for c in TABLE5_CONFIGS {
            assert!(s.contains(c));
        }
    }
}
