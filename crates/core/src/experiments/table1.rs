//! Table 1: breakdown of execution cycles by loop bound class for three
//! equally-sized register files (S128, 4C32, 1C64S64).

use crate::driver::{run_suite, ConfiguredMachine, RunOptions};
use hcrf_ir::Loop;
use hcrf_perf::{classify_loop, BoundClass};
use serde::{Deserialize, Serialize};

/// The three configurations the table compares (all 128 registers total).
pub const CONFIGS: [&str; 3] = ["S128", "4C32", "1C64S64"];

/// Breakdown for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Column {
    /// Configuration name.
    pub config: String,
    /// Percentage of loops in each class (same order as [`BoundClass::all`]).
    pub percent_loops: [f64; 4],
    /// Execution cycles attributed to each class.
    pub cycles: [u64; 4],
    /// Total execution cycles.
    pub total_cycles: u64,
}

/// Run the Table 1 experiment.
pub fn run(suite: &[Loop], options: &RunOptions) -> Vec<Table1Column> {
    CONFIGS
        .iter()
        .map(|name| column(suite, options, name))
        .collect()
}

/// Evaluate one configuration column.
pub fn column(suite: &[Loop], options: &RunOptions, name: &str) -> Table1Column {
    let config = ConfiguredMachine::from_name(name).expect("valid configuration");
    let run = run_suite(&config, suite, options);
    let mut counts = [0usize; 4];
    let mut cycles = [0u64; 4];
    for (l, r) in suite.iter().zip(run.loops.iter()) {
        let class = classify_loop(
            l,
            &r.schedule,
            &config.machine.latencies,
            config.machine.fu_count,
            config.machine.mem_ports,
        );
        let idx = BoundClass::all().iter().position(|c| *c == class).unwrap();
        counts[idx] += 1;
        cycles[idx] += r.performance.total_cycles();
    }
    let n = suite.len().max(1) as f64;
    Table1Column {
        config: name.to_string(),
        percent_loops: [
            100.0 * counts[0] as f64 / n,
            100.0 * counts[1] as f64 / n,
            100.0 * counts[2] as f64 / n,
            100.0 * counts[3] as f64 / n,
        ],
        cycles,
        total_cycles: cycles.iter().sum(),
    }
}

/// Format the table like the paper (rows = bound classes, columns = configs).
pub fn format(columns: &[Table1Column]) -> String {
    let mut out = String::from("Loop bounded   ");
    for c in columns {
        out.push_str(&format!("| {:>18} ", c.config));
    }
    out.push('\n');
    for (i, class) in BoundClass::all().iter().enumerate() {
        out.push_str(&format!("{:<14} ", class.label()));
        for c in columns {
            out.push_str(&format!(
                "| {:6.1}% {:>10} ",
                c.percent_loops[i], c.cycles[i]
            ));
        }
        out.push('\n');
    }
    out.push_str("Total          ");
    for c in columns {
        out.push_str(&format!("| 100.0%  {:>10} ", c.total_cycles));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_workloads::small_suite;

    #[test]
    fn percentages_sum_to_100() {
        let suite = small_suite(0);
        let col = column(&suite, &RunOptions::fast(), "S128");
        let sum: f64 = col.percent_loops.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6, "sum {sum}");
        assert_eq!(col.total_cycles, col.cycles.iter().sum::<u64>());
    }

    #[test]
    fn formatting_mentions_all_classes() {
        let suite = small_suite(0);
        let cols = vec![column(&suite, &RunOptions::fast(), "S128")];
        let s = format(&cols);
        for label in ["F.U.", "MemPort", "Rec.", "Com.", "Total"] {
            assert!(s.contains(label), "{label} missing from\n{s}");
        }
    }
}
