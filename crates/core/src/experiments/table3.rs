//! Table 3: static evaluation of the scheduler with unbounded registers,
//! with unlimited and limited bandwidth between register banks.

use crate::driver::{run_suite, ConfiguredMachine, RunOptions};
use hcrf_ir::Loop;
use hcrf_machine::{Capacity, RfOrganization};
use serde::{Deserialize, Serialize};

/// The register-file shapes of Table 3 (all banks unbounded).
pub fn configurations() -> Vec<(String, RfOrganization)> {
    vec![
        (
            "S∞".to_string(),
            RfOrganization::Monolithic {
                regs: Capacity::Unbounded,
            },
        ),
        ("1C∞S∞".to_string(), hier(1)),
        (
            "2C∞".to_string(),
            RfOrganization::Clustered {
                clusters: 2,
                regs_per_cluster: Capacity::Unbounded,
            },
        ),
        ("2C∞S∞".to_string(), hier(2)),
        (
            "4C∞".to_string(),
            RfOrganization::Clustered {
                clusters: 4,
                regs_per_cluster: Capacity::Unbounded,
            },
        ),
        ("4C∞S∞".to_string(), hier(4)),
        ("8C∞S∞".to_string(), hier(8)),
    ]
}

fn hier(clusters: u32) -> RfOrganization {
    RfOrganization::Hierarchical {
        clusters,
        cluster_regs: Capacity::Unbounded,
        shared_regs: Capacity::Unbounded,
    }
}

/// One row of Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Configuration label (with ∞ marks).
    pub config: String,
    /// Percentage of loops achieving their MII (unlimited bandwidth).
    pub unlimited_percent_mii: f64,
    /// ΣII with unlimited bandwidth.
    pub unlimited_sum_ii: u64,
    /// Scheduling time in seconds with unlimited bandwidth.
    pub unlimited_sched_seconds: f64,
    /// `lp-sp` ports used in the limited-bandwidth run.
    pub lp_sp: (u32, u32),
    /// Percentage of loops achieving their MII (limited bandwidth).
    pub limited_percent_mii: f64,
    /// ΣII with limited bandwidth.
    pub limited_sum_ii: u64,
    /// Scheduling time in seconds with limited bandwidth.
    pub limited_sched_seconds: f64,
}

/// Run the Table 3 experiment.
pub fn run(suite: &[Loop], options: &RunOptions) -> Vec<Table3Row> {
    configurations()
        .into_iter()
        .map(|(label, rf)| row(suite, options, label, rf))
        .collect()
}

/// Evaluate one configuration (both bandwidth scenarios).
pub fn row(suite: &[Loop], options: &RunOptions, label: String, rf: RfOrganization) -> Table3Row {
    // Unlimited bandwidth: baseline latencies, infinite lp/sp/buses.
    let unlimited_cfg = {
        let mut c = ConfiguredMachine::with_baseline_latencies(rf);
        c.machine = c.machine.with_unbounded_bandwidth();
        c
    };
    let unlimited = run_suite(&unlimited_cfg, suite, options);

    // Limited bandwidth: the Section 4 port counts.
    let limited_cfg = ConfiguredMachine::with_baseline_latencies(rf);
    let lp_sp = (limited_cfg.machine.lp, limited_cfg.machine.sp);
    let limited = run_suite(&limited_cfg, suite, options);

    Table3Row {
        config: label,
        unlimited_percent_mii: unlimited.aggregate.percent_at_mii(),
        unlimited_sum_ii: unlimited.aggregate.sum_ii,
        unlimited_sched_seconds: unlimited.scheduling_seconds,
        lp_sp,
        limited_percent_mii: limited.aggregate.percent_at_mii(),
        limited_sum_ii: limited.aggregate.sum_ii,
        limited_sched_seconds: limited.scheduling_seconds,
    }
}

/// Format rows like the paper's table.
pub fn format(rows: &[Table3Row]) -> String {
    let mut out =
        String::from("Config     | %MII    ΣII    time(s) | lp-sp  %MII    ΣII    time(s)\n");
    for r in rows {
        out.push_str(&format!(
            "{:<10} | {:5.1} {:>7} {:8.2} | {}-{}   {:5.1} {:>7} {:8.2}\n",
            r.config,
            r.unlimited_percent_mii,
            r.unlimited_sum_ii,
            r.unlimited_sched_seconds,
            r.lp_sp.0,
            r.lp_sp.1,
            r.limited_percent_mii,
            r.limited_sum_ii,
            r.limited_sched_seconds,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_workloads::small_suite;

    #[test]
    fn monolithic_unbounded_achieves_mii_for_most_loops() {
        let suite = small_suite(0);
        let r = row(
            &suite,
            &RunOptions::fast(),
            "S∞".into(),
            RfOrganization::Monolithic {
                regs: Capacity::Unbounded,
            },
        );
        assert!(
            r.unlimited_percent_mii > 80.0,
            "{}",
            r.unlimited_percent_mii
        );
        // With a monolithic RF the bandwidth limit is irrelevant.
        assert_eq!(r.unlimited_sum_ii, r.limited_sum_ii);
    }

    #[test]
    fn more_clusters_cannot_reduce_sum_ii() {
        let suite = small_suite(0);
        let opts = RunOptions::fast();
        let mono = row(
            &suite,
            &opts,
            "S∞".into(),
            RfOrganization::Monolithic {
                regs: Capacity::Unbounded,
            },
        );
        let hier8 = row(&suite, &opts, "8C∞S∞".into(), hier(8));
        assert!(hier8.unlimited_sum_ii >= mono.unlimited_sum_ii);
        // Limiting the bandwidth can only make things worse (or equal).
        assert!(hier8.limited_sum_ii >= hier8.unlimited_sum_ii);
    }
}
