//! Figure 4: cumulative distribution of the LoadR (`lp`) and StoreR (`sp`)
//! ports each loop needs per distributed bank, measured with unbounded
//! register banks and unbounded inter-level bandwidth.

use hcrf_ir::Loop;
use hcrf_sched::port_profile::{cumulative_distribution, port_requirements};
use serde::{Deserialize, Serialize};

/// Clustering degrees evaluated by the figure.
pub const CLUSTER_DEGREES: [u32; 4] = [1, 2, 4, 8];

/// Distribution of port requirements for one clustering degree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Series {
    /// Number of clusters.
    pub clusters: u32,
    /// `lp_cdf[k]` = percentage of loops needing at most `k` LoadR ports.
    pub lp_cdf: Vec<f64>,
    /// `sp_cdf[k]` = percentage of loops needing at most `k` StoreR ports.
    pub sp_cdf: Vec<f64>,
    /// Smallest `lp` satisfying at least 95 % of the loops
    /// (the design rule of Section 4).
    pub lp_95: u32,
    /// Smallest `sp` satisfying at least 95 % of the loops.
    pub sp_95: u32,
}

/// Run the Figure 4 experiment for every clustering degree.
pub fn run(suite: &[Loop]) -> Vec<Fig4Series> {
    CLUSTER_DEGREES.iter().map(|&c| series(suite, c)).collect()
}

/// Measure one clustering degree.
pub fn series(suite: &[Loop], clusters: u32) -> Fig4Series {
    let mut lp_req = Vec::with_capacity(suite.len());
    let mut sp_req = Vec::with_capacity(suite.len());
    for l in suite {
        let req = port_requirements(&l.ddg, clusters);
        lp_req.push(req.lp);
        sp_req.push(req.sp);
    }
    let max_ports = 6;
    let lp_cdf = cumulative_distribution(&lp_req, max_ports);
    let sp_cdf = cumulative_distribution(&sp_req, max_ports);
    let lp_95 = lp_cdf
        .iter()
        .position(|&p| p >= 95.0)
        .unwrap_or(max_ports as usize) as u32;
    let sp_95 = sp_cdf
        .iter()
        .position(|&p| p >= 95.0)
        .unwrap_or(max_ports as usize) as u32;
    Fig4Series {
        clusters,
        lp_cdf,
        sp_cdf,
        lp_95,
        sp_95,
    }
}

/// Format the series as two small tables (one for lp, one for sp).
pub fn format(series: &[Fig4Series]) -> String {
    let mut out = String::from("(a) LoadR ports (lp): % of loops needing <= k ports\nclusters ");
    let max = series.first().map(|s| s.lp_cdf.len()).unwrap_or(0);
    for k in 0..max {
        out.push_str(&format!("   k={k}  "));
    }
    out.push_str(" lp@95%\n");
    for s in series {
        out.push_str(&format!("{:>8} ", s.clusters));
        for v in &s.lp_cdf {
            out.push_str(&format!(" {v:6.1} "));
        }
        out.push_str(&format!("   {}\n", s.lp_95));
    }
    out.push_str("(b) StoreR ports (sp): % of loops needing <= k ports\nclusters ");
    for k in 0..max {
        out.push_str(&format!("   k={k}  "));
    }
    out.push_str(" sp@95%\n");
    for s in series {
        out.push_str(&format!("{:>8} ", s.clusters));
        for v in &s.sp_cdf {
            out.push_str(&format!(" {v:6.1} "));
        }
        out.push_str(&format!("   {}\n", s.sp_95));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_workloads::small_suite;

    #[test]
    fn cdfs_are_monotone_and_reach_100() {
        let suite = small_suite(0);
        let s = series(&suite, 4);
        for w in s.lp_cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(*s.lp_cdf.last().unwrap() > 99.0);
        assert!(*s.sp_cdf.last().unwrap() > 99.0);
    }

    #[test]
    fn most_loops_need_one_or_two_ports() {
        // The paper's design rule settles on lp <= 4 and sp <= 2 and on fewer
        // ports per bank as the clustering degree grows (the LoadR traffic
        // spreads over more banks).
        let suite = small_suite(0);
        let mut prev_lp = u32::MAX;
        for &c in &CLUSTER_DEGREES {
            let s = series(&suite, c);
            assert!(s.lp_95 <= 5, "{c} clusters: lp@95 = {}", s.lp_95);
            assert!(s.sp_95 <= 2, "{c} clusters: sp@95 = {}", s.sp_95);
            assert!(
                s.lp_95 <= prev_lp,
                "{c} clusters needs more ports than fewer clusters did"
            );
            prev_lp = s.lp_95;
        }
    }
}
