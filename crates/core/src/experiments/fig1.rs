//! Figure 1: IPC achieved as a function of the machine resources
//! (x functional units + y memory ports), monolithic register file with
//! unbounded registers.

use crate::driver::{run_suite, ConfiguredMachine, RunOptions};
use hcrf_ir::Loop;
use hcrf_machine::{Capacity, MachineConfig, RfOrganization};
use hcrf_rfmodel::evaluate;
use serde::{Deserialize, Serialize};

/// One point of Figure 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Point {
    /// Number of general-purpose functional units.
    pub fus: u32,
    /// Number of memory ports.
    pub mem_ports: u32,
    /// Aggregate IPC over the suite (operations executed per cycle,
    /// weighted by loop trip counts).
    pub ipc: f64,
    /// Efficiency: IPC divided by the issue width (fus + mem_ports).
    pub efficiency: f64,
}

/// The resource points of the paper's Figure 1.
pub const RESOURCE_POINTS: [(u32, u32); 5] = [(4, 2), (6, 3), (8, 4), (10, 5), (12, 6)];

/// Run the Figure 1 sweep.
pub fn run(suite: &[Loop], options: &RunOptions) -> Vec<Fig1Point> {
    RESOURCE_POINTS
        .iter()
        .map(|&(fus, mem_ports)| point(suite, options, fus, mem_ports))
        .collect()
}

/// Evaluate a single resource point.
pub fn point(suite: &[Loop], options: &RunOptions, fus: u32, mem_ports: u32) -> Fig1Point {
    let mut machine = MachineConfig::with_resources(fus, mem_ports);
    machine.rf = RfOrganization::Monolithic {
        regs: Capacity::Unbounded,
    };
    let hardware = evaluate(&machine);
    let config = ConfiguredMachine { machine, hardware };
    let run = run_suite(&config, suite, options);
    // IPC weighted by trip count: operations executed / kernel cycles spent.
    let mut ops: f64 = 0.0;
    let mut cycles: f64 = 0.0;
    for (l, r) in suite.iter().zip(run.loops.iter()) {
        ops += r.schedule.original_ops as f64 * l.iterations as f64;
        cycles += r.schedule.ii as f64 * l.iterations as f64;
    }
    let ipc = if cycles > 0.0 { ops / cycles } else { 0.0 };
    Fig1Point {
        fus,
        mem_ports,
        ipc,
        efficiency: ipc / (fus + mem_ports) as f64,
    }
}

/// Format the points like the figure's axis labels.
pub fn format(points: &[Fig1Point]) -> String {
    let mut out = String::from("resources (FU+mem)   IPC    efficiency\n");
    for p in points {
        out.push_str(&format!(
            "{:>2}+{:<2}               {:5.2}   {:5.2}\n",
            p.fus, p.mem_ports, p.ipc, p.efficiency
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_workloads::small_suite;

    #[test]
    fn ipc_grows_with_resources() {
        let suite = small_suite(0);
        let opts = RunOptions::fast();
        let small = point(&suite, &opts, 4, 2);
        let big = point(&suite, &opts, 12, 6);
        assert!(big.ipc >= small.ipc, "{} vs {}", big.ipc, small.ipc);
        assert!(small.ipc > 0.5);
        // Efficiency drops as the machine gets wider (diminishing returns).
        assert!(big.efficiency <= small.efficiency + 1e-9);
    }

    #[test]
    fn formatting_contains_every_point() {
        let pts = vec![Fig1Point {
            fus: 8,
            mem_ports: 4,
            ipc: 6.2,
            efficiency: 0.52,
        }];
        let s = format(&pts);
        assert!(s.contains(" 8+4"));
        assert!(s.contains("6.2"));
    }
}
