//! Adapter between scheduled loops and the cache simulator.

use hcrf_machine::MachineConfig;
use hcrf_memsim::{is_prefetchable, ScheduledAccess};
use hcrf_sched::ScheduleResult;

/// Extract the memory accesses of a scheduled kernel, with the latency the
/// scheduler assumed for each: the hit latency normally, the miss latency for
/// loads covered by binding prefetching — but only when the schedule was
/// actually produced with `binding_prefetch` enabled; otherwise every load
/// was scheduled at the hit latency and every miss will stall.
///
/// Returns an empty vector when the schedule was produced without keeping the
/// final graph (`SchedulerParams::keep_schedule == false`).
pub fn kernel_accesses(
    schedule: &ScheduleResult,
    machine: &MachineConfig,
    binding_prefetch: bool,
) -> Vec<ScheduledAccess> {
    let (Some(graph), Some(placements)) = (&schedule.final_graph, &schedule.placements) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (id, node) in graph.nodes() {
        let Some(mem) = node.mem else { continue };
        if !node.kind.is_memory() {
            continue;
        }
        let is_load = node.kind == hcrf_ir::OpKind::Load;
        let assumed = if is_load {
            if binding_prefetch && is_prefetchable(graph, id) {
                machine.latencies.load_miss
            } else {
                machine.latencies.load
            }
        } else {
            machine.latencies.store
        };
        out.push(ScheduledAccess {
            issue_cycle: placements[id.index()].cycle,
            is_load,
            access: mem,
            assumed_latency: assumed,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_ir::{DdgBuilder, OpKind};
    use hcrf_machine::RfOrganization;
    use hcrf_sched::{schedule_loop, SchedulerParams};

    #[test]
    fn accesses_extracted_with_assumed_latencies() {
        let mut b = DdgBuilder::new("m");
        let l = b.load(0, 8);
        let a = b.op(OpKind::FAdd);
        let s = b.store(1, 8);
        b.flow(l, a, 0).flow(a, s, 0);
        let g = b.build();
        let machine = MachineConfig::paper_baseline(RfOrganization::monolithic(64));
        let params = SchedulerParams::default().with_binding_prefetch();
        let r = schedule_loop(&g, &machine, &params);
        let accesses = kernel_accesses(&r, &machine, true);
        assert_eq!(accesses.len(), 2);
        let load = accesses.iter().find(|a| a.is_load).unwrap();
        // The streaming load is prefetchable: it was scheduled at miss latency.
        assert_eq!(load.assumed_latency, machine.latencies.load_miss);
        let store = accesses.iter().find(|a| !a.is_load).unwrap();
        assert_eq!(store.assumed_latency, machine.latencies.store);
    }

    #[test]
    fn no_schedule_kept_gives_empty_accesses() {
        let mut b = DdgBuilder::new("m");
        let l = b.load(0, 8);
        let s = b.store(1, 8);
        b.flow(l, s, 0);
        let g = b.build();
        let machine = MachineConfig::paper_baseline(RfOrganization::monolithic(64));
        let r = schedule_loop(&g, &machine, &SchedulerParams::default().without_schedule());
        assert!(kernel_accesses(&r, &machine, true).is_empty());
    }
}
