//! Hierarchical clustered register file organization for VLIW processors —
//! experiment driver and public facade.
//!
//! This crate ties the substrates together and exposes the experiments of
//! the paper as library functions:
//!
//! * [`driver`] — schedule a whole loop suite for one machine configuration
//!   (in parallel across worker threads) and aggregate the results;
//! * [`experiments`] — one module per table / figure of the paper, each
//!   returning structured rows that the bench binaries print and the
//!   integration tests assert on;
//! * re-exports of the most commonly used types from the underlying crates.
//!
//! # Quick start
//!
//! ```
//! use hcrf::prelude::*;
//!
//! // Schedule a small suite for two register file organizations and compare.
//! let loops = hcrf_workloads::small_suite(0);
//! let mono = ConfiguredMachine::from_name("S64").unwrap();
//! let hier = ConfiguredMachine::from_name("8C16S16").unwrap();
//! let a = run_suite(&mono, &loops, &RunOptions::fast());
//! let b = run_suite(&hier, &loops, &RunOptions::fast());
//! // The hierarchical-clustered machine needs more cycles but its much
//! // faster clock usually wins on execution time.
//! assert!(b.aggregate.total_cycles() >= a.aggregate.total_cycles());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod experiments;
pub mod memory;

pub use driver::{
    fold_suite_aggregate, run_loop_traced, run_suite, run_suite_traced, suite_fingerprint,
    ConfiguredMachine, LoopRun, RunOptions, SuiteRun,
};

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::driver::{
        fold_suite_aggregate, run_loop_traced, run_suite, run_suite_traced, suite_fingerprint,
        ConfiguredMachine, LoopRun, RunOptions, SuiteRun,
    };
    pub use hcrf_ir::{Ddg, DdgBuilder, Loop, OpKind, OpLatencies};
    pub use hcrf_machine::{Capacity, MachineConfig, RfOrganization};
    pub use hcrf_memsim::{CacheConfig, PrefetchPolicy};
    pub use hcrf_perf::{BoundClass, LoopPerformance, SuiteAggregate};
    pub use hcrf_rfmodel::{evaluate, HardwareEval};
    pub use hcrf_sched::{schedule_loop, ScheduleResult, SchedulerParams};
    pub use hcrf_telemetry::{Telemetry, Verbosity};
}
