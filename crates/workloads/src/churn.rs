//! Ejection-churn-heavy synthetic kernel family.
//!
//! The standard population (see [`crate::synthetic`]) is calibrated to the
//! paper's loop-bound mix, which leaves backtracking-heavy behaviour rare:
//! most loops place every node without a single forced ejection. This family
//! is the opposite extreme, built so the scheduler spends its time in the
//! `Force_and_Eject` path — the pathological shape the incremental-pressure
//! work (PR 2) identified on `4C16S64` (small `syn*_fu` loops whose divides
//! cannot recur at small IIs and whose forced placements storm the ejection
//! machinery):
//!
//! * **long non-pipelined operations near the II** — divides (17-cycle
//!   occupancy) whose resource-bound MII is far below the II they actually
//!   fit at (a divide needs `ceil(17 / II) ≤ 2` FU copies per row, i.e.
//!   II ≥ 9 on a 2-FU cluster), so every II in between is attempted, forced
//!   and abandoned;
//! * **high resource contention** — a wide fan of adds consuming several
//!   divide results at once crowds the FU rows the divides block, so the
//!   forced placements find victims to eject rather than giving up
//!   immediately;
//! * **deliberately acyclic bodies** — the churn must come from resource
//!   conflicts, not from dependence cycles: cross-recurrence edges make the
//!   eject-violators cascade re-schedule whole recurrences and blow the
//!   attempt budget (minutes per loop), which would make the family useless
//!   as a benchmark input.
//!
//! Generation is fully deterministic given the seed.

use hcrf_ir::{DdgBuilder, Loop, NodeId, OpKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the churn population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnParams {
    /// Number of loops to generate.
    pub loops: usize,
    /// RNG seed (the default seed reproduces the standard churn suite).
    pub seed: u64,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            loops: 64,
            seed: 0xe1ec_7104,
        }
    }
}

/// Generator for the ejection-churn-heavy loop population.
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    params: ChurnParams,
}

impl ChurnWorkload {
    /// Create a generator with the given parameters.
    pub fn new(params: ChurnParams) -> Self {
        ChurnWorkload { params }
    }

    /// Generate the whole population.
    pub fn generate(&self) -> Vec<Loop> {
        let mut rng = SmallRng::seed_from_u64(self.params.seed);
        (0..self.params.loops)
            .map(|i| generate_one(i, &mut rng))
            .collect()
    }
}

fn generate_one(index: usize, rng: &mut SmallRng) -> Loop {
    let mut b = DdgBuilder::new(format!("churn{index:04}"));
    let mut array = 0u32;

    // A few loads feeding divide chains: the divides keep the resource-bound
    // MII low while refusing to recur at any II below ~9 on a 2-FU cluster,
    // so the scheduler walks a long ladder of IIs, forcing and ejecting at
    // each rung.
    let divs = rng.gen_range(2..=3usize);
    let mut vals: Vec<NodeId> = Vec::new();
    for _ in 0..divs {
        let l = b.load(array, 8);
        array += 1;
        let d = b.op(OpKind::FDiv);
        b.flow(l, d, 0);
        vals.push(d);
    }

    // A wide fan of adds consuming pairs of earlier results: the fan crowds
    // the FU rows the divides block, so the forced divide placements find
    // single-cycle victims to eject instead of aborting immediately, and the
    // ejected adds re-place into other crowded rows.
    let adds = rng.gen_range(28..=44usize);
    for k in 0..adds {
        let a = b.op(OpKind::FAdd);
        // Operands come from a recent window so lifetimes stay short: the
        // churn must come from FU-row conflicts, not from a register
        // pressure the machine can never satisfy (which would make the loop
        // spill-bound and unschedulable at every II).
        let recent = vals.len().min(8);
        b.flow(vals[vals.len() - 1 - rng.gen_range(0..recent)], a, 0);
        if k > 0 {
            let other = vals[vals.len() - 1 - rng.gen_range(0..recent)];
            if other != a {
                b.flow(other, a, 0);
            }
        }
        vals.push(a);
    }

    // Store a couple of fan results.
    for k in 0..rng.gen_range(1..=2usize) {
        let s = b.store(array, 8);
        array += 1;
        b.flow(vals[vals.len() - 1 - k], s, 0);
    }

    // Streaming memory traffic contending for the (shared) memory ports.
    let streams = rng.gen_range(3..=8usize);
    for _ in 0..streams {
        let l = b.load(array, 8);
        array += 1;
        let s = b.store(array, 8);
        array += 1;
        b.flow(l, s, 0);
    }

    let iterations = 256 + (rng.gen_range(0..8u64)) * 128;
    Loop::new(b.build(), iterations, 8)
}

/// The standard churn suite: `loops` deterministic ejection-churn-heavy
/// loops with the default seed.
pub fn churn_suite(loops: usize) -> Vec<Loop> {
    ChurnWorkload::new(ChurnParams {
        loops,
        ..Default::default()
    })
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_machine::{MachineConfig, RfOrganization};
    use hcrf_sched::{schedule_loop, SchedulerParams};

    #[test]
    fn generation_is_deterministic_and_valid() {
        let a = churn_suite(16);
        let b = churn_suite(16);
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.ddg.name, y.ddg.name);
            assert_eq!(x.ddg.num_nodes(), y.ddg.num_nodes());
            assert_eq!(x.ddg.num_edges(), y.ddg.num_edges());
            x.ddg.validate().expect(&x.ddg.name);
        }
    }

    #[test]
    fn names_do_not_collide_with_the_standard_suite() {
        let churn = churn_suite(8);
        for l in &churn {
            assert!(l.ddg.name.starts_with("churn"), "{}", l.ddg.name);
        }
    }

    #[test]
    fn churn_loops_eject_heavily_on_hierarchical_machines() {
        // The family exists to exercise Force_and_Eject: on the 2-FU-per-
        // cluster hierarchical machine the suite must schedule successfully
        // AND pay a substantial number of ejections doing so.
        let loops = churn_suite(8);
        let m = MachineConfig::paper_baseline(RfOrganization::parse("4C16S64").unwrap());
        let params = SchedulerParams {
            max_ii: 256,
            ..Default::default()
        };
        let mut ejections = 0u64;
        let mut restarts = 0u64;
        for l in &loops {
            let r = schedule_loop(&l.ddg, &m, &params);
            assert!(!r.failed, "{} failed to schedule", l.ddg.name);
            ejections += r.stats.ejections;
            restarts += r.stats.ii_restarts as u64;
        }
        assert!(
            ejections > 40,
            "churn suite should force heavy backtracking, got {ejections} ejections"
        );
        assert!(
            restarts > 100,
            "churn loops should walk a long II ladder, got {restarts} restarts"
        );
    }
}
