//! Hand-written dependence graphs of classic numerical loop kernels.
//!
//! Each kernel mirrors the innermost loop of a well-known numerical code
//! (BLAS level-1 operations, Livermore kernels, stencils, simple recurrences)
//! expressed directly as the dependence graph the ICTINEO front-end would
//! hand to the scheduler. Trip counts are chosen to be representative of the
//! array sizes such codes run on.

use hcrf_ir::{DdgBuilder, Loop, MemAccess, NodeId, OpKind};

/// Helper: build a `Loop` with a graph, trip count and invocation count.
fn finish(b: DdgBuilder, iterations: u64, invocations: u64) -> Loop {
    Loop::new(b.build(), iterations, invocations)
}

/// `y[i] = a * x[i] + y[i]` — the DAXPY kernel (BLAS level 1).
pub fn daxpy() -> Loop {
    let mut b = DdgBuilder::new("daxpy");
    let lx = b.load(0, 8);
    let ly = b.load(1, 8);
    let mul = b.op_invariant(OpKind::FMul);
    let add = b.op(OpKind::FAdd);
    let st = b.store(1, 8);
    b.flow(lx, mul, 0)
        .flow(mul, add, 0)
        .flow(ly, add, 0)
        .flow(add, st, 0);
    finish(b, 4096, 16)
}

/// `s += x[i] * y[i]` — dot product with a sum recurrence.
pub fn ddot() -> Loop {
    let mut b = DdgBuilder::new("ddot");
    let lx = b.load(0, 8);
    let ly = b.load(1, 8);
    let mul = b.op(OpKind::FMul);
    let acc = b.op(OpKind::FAdd);
    b.flow(lx, mul, 0)
        .flow(ly, mul, 0)
        .flow(mul, acc, 0)
        .flow(acc, acc, 1);
    finish(b, 4096, 16)
}

/// `y[i] = a * x[i]` — vector scale.
pub fn dscal() -> Loop {
    let mut b = DdgBuilder::new("dscal");
    let lx = b.load(0, 8);
    let mul = b.op_invariant(OpKind::FMul);
    let st = b.store(1, 8);
    b.flow(lx, mul, 0).flow(mul, st, 0);
    finish(b, 8192, 8)
}

/// `x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])` — Livermore kernel 1
/// (hydro fragment).
pub fn livermore1_hydro() -> Loop {
    let mut b = DdgBuilder::new("lk1_hydro");
    let ly = b.load(0, 8);
    let lz10 = b.load_at(MemAccess {
        base: 1,
        offset: 80,
        stride: 8,
        size: 8,
    });
    let lz11 = b.load_at(MemAccess {
        base: 1,
        offset: 88,
        stride: 8,
        size: 8,
    });
    let m_r = b.op_invariant(OpKind::FMul);
    let m_t = b.op_invariant(OpKind::FMul);
    let add_inner = b.op(OpKind::FAdd);
    let m_y = b.op(OpKind::FMul);
    let add_q = b.op_invariant(OpKind::FAdd);
    let st = b.store(2, 8);
    b.flow(lz10, m_r, 0)
        .flow(lz11, m_t, 0)
        .flow(m_r, add_inner, 0)
        .flow(m_t, add_inner, 0)
        .flow(ly, m_y, 0)
        .flow(add_inner, m_y, 0)
        .flow(m_y, add_q, 0)
        .flow(add_q, st, 0);
    finish(b, 990, 200)
}

/// `x[i] = z[i]*(y[i] - x[i-1])` — Livermore kernel 5 (tridiagonal
/// elimination), a first-order recurrence through memory.
pub fn livermore5_tridiag() -> Loop {
    let mut b = DdgBuilder::new("lk5_tridiag");
    let ly = b.load(0, 8);
    let lz = b.load(1, 8);
    let sub = b.op(OpKind::FAdd);
    let mul = b.op(OpKind::FMul);
    let st = b.store(2, 8);
    b.flow(ly, sub, 0)
        .flow(lz, mul, 0)
        .flow(sub, mul, 0)
        .flow(mul, st, 0)
        // x[i-1] feeds the subtraction of the next iteration.
        .flow(mul, sub, 1);
    finish(b, 997, 300)
}

/// Livermore kernel 7 — equation of state fragment (wide, compute heavy).
pub fn livermore7_eos() -> Loop {
    let mut b = DdgBuilder::new("lk7_eos");
    let lu = b.load(0, 8);
    let lz = b.load(1, 8);
    let ly = b.load(2, 8);
    let lu3 = b.load_at(MemAccess {
        base: 0,
        offset: 24,
        stride: 8,
        size: 8,
    });
    let lu2 = b.load_at(MemAccess {
        base: 0,
        offset: 16,
        stride: 8,
        size: 8,
    });
    let lu1 = b.load_at(MemAccess {
        base: 0,
        offset: 8,
        stride: 8,
        size: 8,
    });
    let m1 = b.op_invariant(OpKind::FMul); // r*z[k]
    let m2 = b.op_invariant(OpKind::FMul); // t*u[k+3]
    let a1 = b.op(OpKind::FAdd); // u[k+2] + m2
    let m3 = b.op_invariant(OpKind::FMul); // t^2 ...
    let a2 = b.op(OpKind::FAdd);
    let m4 = b.op_invariant(OpKind::FMul);
    let a3 = b.op(OpKind::FAdd);
    let m5 = b.op(OpKind::FMul);
    let a4 = b.op(OpKind::FAdd);
    let a5 = b.op(OpKind::FAdd);
    let st = b.store(3, 8);
    b.flow(lz, m1, 0)
        .flow(lu3, m2, 0)
        .flow(lu2, a1, 0)
        .flow(m2, a1, 0)
        .flow(a1, m3, 0)
        .flow(lu1, a2, 0)
        .flow(m3, a2, 0)
        .flow(a2, m4, 0)
        .flow(lu, a3, 0)
        .flow(m4, a3, 0)
        .flow(m1, m5, 0)
        .flow(a3, m5, 0)
        .flow(ly, a4, 0)
        .flow(m5, a4, 0)
        .flow(a4, a5, 0)
        .flow(a5, st, 0);
    finish(b, 120, 600)
}

/// Livermore kernel 11 — first sum (prefix-sum recurrence).
pub fn livermore11_firstsum() -> Loop {
    let mut b = DdgBuilder::new("lk11_firstsum");
    let lx = b.load(0, 8);
    let acc = b.op(OpKind::FAdd);
    let st = b.store(1, 8);
    b.flow(lx, acc, 0).flow(acc, acc, 1).flow(acc, st, 0);
    finish(b, 1000, 400)
}

/// Livermore kernel 12 — first difference.
pub fn livermore12_firstdiff() -> Loop {
    let mut b = DdgBuilder::new("lk12_firstdiff");
    let ly1 = b.load_at(MemAccess {
        base: 0,
        offset: 8,
        stride: 8,
        size: 8,
    });
    let ly = b.load(0, 8);
    let sub = b.op(OpKind::FAdd);
    let st = b.store(1, 8);
    b.flow(ly1, sub, 0).flow(ly, sub, 0).flow(sub, st, 0);
    finish(b, 1000, 400)
}

/// Inner loop of a dense matrix-vector product row (`y[i] += A[i][j]*x[j]`).
pub fn matvec_row() -> Loop {
    let mut b = DdgBuilder::new("matvec_row");
    let la = b.load(0, 8);
    let lx = b.load(1, 8);
    let mul = b.op(OpKind::FMul);
    let acc = b.op(OpKind::FAdd);
    b.flow(la, mul, 0)
        .flow(lx, mul, 0)
        .flow(mul, acc, 0)
        .flow(acc, acc, 1);
    finish(b, 512, 512)
}

/// Inner loop of a blocked matrix multiply with four independent
/// accumulators (unrolled by 4 to expose ILP).
pub fn matmul_unrolled4() -> Loop {
    let mut b = DdgBuilder::new("matmul_u4");
    let mut all: Vec<NodeId> = Vec::new();
    for k in 0..4u32 {
        let la = b.load_at(MemAccess {
            base: 0,
            offset: (k as i64) * 8,
            stride: 32,
            size: 8,
        });
        let lb = b.load_at(MemAccess {
            base: 1,
            offset: (k as i64) * 8,
            stride: 32,
            size: 8,
        });
        let mul = b.op(OpKind::FMul);
        let acc = b.op(OpKind::FAdd);
        b.flow(la, mul, 0)
            .flow(lb, mul, 0)
            .flow(mul, acc, 0)
            .flow(acc, acc, 1);
        all.push(acc);
    }
    finish(b, 256, 2048)
}

/// 1-D three-point Jacobi stencil: `b[i] = c0*(a[i-1] + a[i] + a[i+1])`.
pub fn jacobi3() -> Loop {
    let mut b = DdgBuilder::new("jacobi3");
    let lm = b.load_at(MemAccess {
        base: 0,
        offset: -8,
        stride: 8,
        size: 8,
    });
    let lc = b.load(0, 8);
    let lp = b.load_at(MemAccess {
        base: 0,
        offset: 8,
        stride: 8,
        size: 8,
    });
    let a1 = b.op(OpKind::FAdd);
    let a2 = b.op(OpKind::FAdd);
    let m = b.op_invariant(OpKind::FMul);
    let st = b.store(1, 8);
    b.flow(lm, a1, 0)
        .flow(lc, a1, 0)
        .flow(a1, a2, 0)
        .flow(lp, a2, 0)
        .flow(a2, m, 0)
        .flow(m, st, 0);
    finish(b, 2046, 100)
}

/// 1-D five-point stencil with coefficients.
pub fn stencil5() -> Loop {
    let mut b = DdgBuilder::new("stencil5");
    let mut sums = Vec::new();
    for (k, off) in [-16i64, -8, 0, 8, 16].iter().enumerate() {
        let l = b.load_at(MemAccess {
            base: 0,
            offset: *off,
            stride: 8,
            size: 8,
        });
        let m = b.op_invariant(OpKind::FMul);
        b.flow(l, m, 0);
        let _ = k;
        sums.push(m);
    }
    let a1 = b.op(OpKind::FAdd);
    b.flow(sums[0], a1, 0);
    b.flow(sums[1], a1, 0);
    let a2 = b.op(OpKind::FAdd);
    b.flow(a1, a2, 0);
    b.flow(sums[2], a2, 0);
    let a3 = b.op(OpKind::FAdd);
    b.flow(a2, a3, 0);
    b.flow(sums[3], a3, 0);
    let a4 = b.op(OpKind::FAdd);
    b.flow(a3, a4, 0);
    b.flow(sums[4], a4, 0);
    let st = b.store(1, 8);
    b.flow(a4, st, 0);
    finish(b, 4092, 50)
}

/// Complex multiply-accumulate (radix-2 FFT butterfly body, no twiddle
/// recomputation).
pub fn fft_butterfly() -> Loop {
    let mut b = DdgBuilder::new("fft_butterfly");
    let lar = b.load(0, 16);
    let lai = b.load_at(MemAccess {
        base: 0,
        offset: 8,
        stride: 16,
        size: 8,
    });
    let lbr = b.load(1, 16);
    let lbi = b.load_at(MemAccess {
        base: 1,
        offset: 8,
        stride: 16,
        size: 8,
    });
    // t = w * b (complex multiply with invariant twiddle)
    let m1 = b.op_invariant(OpKind::FMul);
    let m2 = b.op_invariant(OpKind::FMul);
    let m3 = b.op_invariant(OpKind::FMul);
    let m4 = b.op_invariant(OpKind::FMul);
    let tr = b.op(OpKind::FAdd);
    let ti = b.op(OpKind::FAdd);
    // outputs a' = a + t, b' = a - t
    let or1 = b.op(OpKind::FAdd);
    let oi1 = b.op(OpKind::FAdd);
    let or2 = b.op(OpKind::FAdd);
    let oi2 = b.op(OpKind::FAdd);
    let s1 = b.store(2, 16);
    let s2 = b.store_at(MemAccess {
        base: 2,
        offset: 8,
        stride: 16,
        size: 8,
    });
    let s3 = b.store(3, 16);
    let s4 = b.store_at(MemAccess {
        base: 3,
        offset: 8,
        stride: 16,
        size: 8,
    });
    b.flow(lbr, m1, 0)
        .flow(lbi, m2, 0)
        .flow(lbr, m3, 0)
        .flow(lbi, m4, 0);
    b.flow(m1, tr, 0)
        .flow(m2, tr, 0)
        .flow(m3, ti, 0)
        .flow(m4, ti, 0);
    b.flow(lar, or1, 0).flow(tr, or1, 0);
    b.flow(lai, oi1, 0).flow(ti, oi1, 0);
    b.flow(lar, or2, 0).flow(tr, or2, 0);
    b.flow(lai, oi2, 0).flow(ti, oi2, 0);
    b.flow(or1, s1, 0)
        .flow(oi1, s2, 0)
        .flow(or2, s3, 0)
        .flow(oi2, s4, 0);
    finish(b, 512, 1024)
}

/// Horner evaluation of a degree-6 polynomial (long multiply-add chain,
/// recurrence free but latency bound).
pub fn horner6() -> Loop {
    let mut b = DdgBuilder::new("horner6");
    let lx = b.load(0, 8);
    let mut acc = b.op_invariant(OpKind::FMul);
    b.flow(lx, acc, 0);
    for _ in 0..5 {
        let add = b.op_invariant(OpKind::FAdd);
        b.flow(acc, add, 0);
        let mul = b.op(OpKind::FMul);
        b.flow(add, mul, 0);
        b.flow(lx, mul, 0);
        acc = mul;
    }
    let add = b.op_invariant(OpKind::FAdd);
    b.flow(acc, add, 0);
    let st = b.store(1, 8);
    b.flow(add, st, 0);
    finish(b, 2048, 64)
}

/// Vector normalisation step with a divide: `y[i] = x[i] / norm[i]`.
pub fn vector_divide() -> Loop {
    let mut b = DdgBuilder::new("vdiv");
    let lx = b.load(0, 8);
    let ln = b.load(1, 8);
    let div = b.op(OpKind::FDiv);
    let st = b.store(2, 8);
    b.flow(lx, div, 0).flow(ln, div, 0).flow(div, st, 0);
    finish(b, 1024, 32)
}

/// Distance computation with a square root: `d[i] = sqrt(x[i]^2 + y[i]^2)`.
pub fn euclidean_distance() -> Loop {
    let mut b = DdgBuilder::new("dist_sqrt");
    let lx = b.load(0, 8);
    let ly = b.load(1, 8);
    let mx = b.op(OpKind::FMul);
    let my = b.op(OpKind::FMul);
    let add = b.op(OpKind::FAdd);
    let sq = b.op(OpKind::FSqrt);
    let st = b.store(2, 8);
    b.flow(lx, mx, 0).flow(lx, mx, 0);
    b.flow(ly, my, 0);
    b.flow(mx, add, 0)
        .flow(my, add, 0)
        .flow(add, sq, 0)
        .flow(sq, st, 0);
    finish(b, 512, 64)
}

/// Newton-Raphson reciprocal refinement (divide-free but recurrence through
/// a multiply chain).
pub fn newton_reciprocal() -> Loop {
    let mut b = DdgBuilder::new("newton_recip");
    let la = b.load(0, 8);
    let m1 = b.op(OpKind::FMul);
    let sub = b.op_invariant(OpKind::FAdd);
    let m2 = b.op(OpKind::FMul);
    let st = b.store(1, 8);
    b.flow(la, m1, 0)
        .flow(m2, m1, 1) // previous estimate
        .flow(m1, sub, 0)
        .flow(sub, m2, 0)
        .flow(m2, st, 0);
    finish(b, 256, 128)
}

/// Array maximum via compare-free arithmetic trick (running sum of absolute
/// differences — models IF-converted max reduction).
pub fn abs_max_reduction() -> Loop {
    let mut b = DdgBuilder::new("absmax");
    let lx = b.load(0, 8);
    let diff = b.op(OpKind::FAdd);
    let scale = b.op(OpKind::FMul);
    let acc = b.op(OpKind::FAdd);
    b.flow(lx, diff, 0)
        .flow(acc, diff, 1)
        .flow(diff, scale, 0)
        .flow(scale, acc, 0)
        .flow(acc, acc, 1);
    finish(b, 2048, 32)
}

/// Gather-style indirection: `y[i] = x[idx[i]] * w[i]` (the gather load uses
/// a large pseudo-random stride to defeat spatial locality).
pub fn gather_scale() -> Loop {
    let mut b = DdgBuilder::new("gather_scale");
    let lidx = b.load(0, 4);
    let lx = b.load_at(MemAccess {
        base: 1,
        offset: 0,
        stride: 4096,
        size: 8,
    });
    let lw = b.load(2, 8);
    let mul = b.op(OpKind::FMul);
    let st = b.store(3, 8);
    b.flow(lidx, lx, 0) // address computation dependence
        .flow(lx, mul, 0)
        .flow(lw, mul, 0)
        .flow(mul, st, 0);
    finish(b, 1024, 64)
}

/// Triad with two invariants (STREAM triad): `a[i] = b[i] + q*c[i]`.
pub fn stream_triad() -> Loop {
    let mut b = DdgBuilder::new("stream_triad");
    let lb = b.load(0, 8);
    let lc = b.load(1, 8);
    let mul = b.op_invariant(OpKind::FMul);
    let add = b.op(OpKind::FAdd);
    let st = b.store(2, 8);
    b.flow(lc, mul, 0)
        .flow(lb, add, 0)
        .flow(mul, add, 0)
        .flow(add, st, 0);
    finish(b, 8192, 20)
}

/// Second-order linear recurrence: `x[i] = a*x[i-1] + b*x[i-2] + f[i]`.
pub fn second_order_recurrence() -> Loop {
    let mut b = DdgBuilder::new("rec2");
    let lf = b.load(0, 8);
    let m1 = b.op_invariant(OpKind::FMul);
    let m2 = b.op_invariant(OpKind::FMul);
    let a1 = b.op(OpKind::FAdd);
    let a2 = b.op(OpKind::FAdd);
    let st = b.store(1, 8);
    b.flow(a2, m1, 1)
        .flow(a2, m2, 2)
        .flow(m1, a1, 0)
        .flow(m2, a1, 0)
        .flow(lf, a2, 0)
        .flow(a1, a2, 0)
        .flow(a2, st, 0);
    finish(b, 1000, 100)
}

/// Lattice filter section (digital signal processing inner loop).
pub fn lattice_filter() -> Loop {
    let mut b = DdgBuilder::new("lattice");
    let lin = b.load(0, 8);
    let k1 = b.op_invariant(OpKind::FMul);
    let a1 = b.op(OpKind::FAdd);
    let k2 = b.op_invariant(OpKind::FMul);
    let a2 = b.op(OpKind::FAdd);
    let st = b.store(1, 8);
    b.flow(lin, a1, 0)
        .flow(a2, k1, 1)
        .flow(k1, a1, 0)
        .flow(a1, k2, 0)
        .flow(k2, a2, 0)
        .flow(a2, st, 0);
    finish(b, 4096, 16)
}

/// Sparse-style accumulation with two independent chains (models an
/// IF-converted conditional accumulation).
pub fn predicated_accumulate() -> Loop {
    let mut b = DdgBuilder::new("pred_acc");
    let lx = b.load(0, 8);
    let lp = b.load(1, 8);
    let m = b.op(OpKind::FMul);
    let acc1 = b.op(OpKind::FAdd);
    let acc2 = b.op(OpKind::FAdd);
    b.flow(lx, m, 0)
        .flow(lp, m, 0)
        .flow(m, acc1, 0)
        .flow(acc1, acc1, 1)
        .flow(m, acc2, 0)
        .flow(acc2, acc2, 1);
    finish(b, 2048, 40)
}

/// Interpolation kernel mixing loads at two strides.
pub fn linear_interpolation() -> Loop {
    let mut b = DdgBuilder::new("lerp");
    let l0 = b.load(0, 8);
    let l1 = b.load_at(MemAccess {
        base: 0,
        offset: 8,
        stride: 8,
        size: 8,
    });
    let lt = b.load(1, 8);
    let sub = b.op(OpKind::FAdd);
    let mul = b.op(OpKind::FMul);
    let add = b.op(OpKind::FAdd);
    let st = b.store(2, 8);
    b.flow(l0, sub, 0)
        .flow(l1, sub, 0)
        .flow(sub, mul, 0)
        .flow(lt, mul, 0)
        .flow(l0, add, 0)
        .flow(mul, add, 0)
        .flow(add, st, 0);
    finish(b, 2048, 64)
}

/// Norm accumulation with divide inside the loop (mixed latency pressure).
pub fn normalized_accumulate() -> Loop {
    let mut b = DdgBuilder::new("norm_acc");
    let lx = b.load(0, 8);
    let lw = b.load(1, 8);
    let div = b.op(OpKind::FDiv);
    let acc = b.op(OpKind::FAdd);
    b.flow(lx, div, 0)
        .flow(lw, div, 0)
        .flow(div, acc, 0)
        .flow(acc, acc, 1);
    finish(b, 512, 32)
}

/// Wide independent expression tree (high ILP, register hungry).
pub fn wide_expression() -> Loop {
    let mut b = DdgBuilder::new("wide_expr");
    let mut partials = Vec::new();
    for k in 0..8u32 {
        let l1 = b.load(k, 8);
        let l2 = b.load(k + 8, 8);
        let m = b.op(OpKind::FMul);
        b.flow(l1, m, 0).flow(l2, m, 0);
        partials.push(m);
    }
    // Reduce the eight products with a balanced tree.
    let mut level = partials;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let a = b.op(OpKind::FAdd);
                b.flow(pair[0], a, 0).flow(pair[1], a, 0);
                next.push(a);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let st = b.store(31, 8);
    b.flow(level[0], st, 0);
    finish(b, 512, 256)
}

/// All hand-written kernels, in a deterministic order.
pub fn all_kernels() -> Vec<Loop> {
    vec![
        daxpy(),
        ddot(),
        dscal(),
        livermore1_hydro(),
        livermore5_tridiag(),
        livermore7_eos(),
        livermore11_firstsum(),
        livermore12_firstdiff(),
        matvec_row(),
        matmul_unrolled4(),
        jacobi3(),
        stencil5(),
        fft_butterfly(),
        horner6(),
        vector_divide(),
        euclidean_distance(),
        newton_reciprocal(),
        abs_max_reduction(),
        gather_scale(),
        stream_triad(),
        second_order_recurrence(),
        lattice_filter(),
        predicated_accumulate(),
        linear_interpolation(),
        normalized_accumulate(),
        wide_expression(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_ir::{res_mii, OpLatencies, ResourceCounts};

    #[test]
    fn all_kernels_are_valid_graphs() {
        let kernels = all_kernels();
        assert!(kernels.len() >= 25);
        for k in &kernels {
            k.ddg.validate().expect(&k.ddg.name);
            assert!(k.iterations > 0);
            assert!(k.invocations > 0);
            assert!(k.ddg.num_nodes() > 0);
        }
    }

    #[test]
    fn kernel_names_are_unique() {
        use std::collections::HashSet;
        let kernels = all_kernels();
        let names: HashSet<_> = kernels.iter().map(|k| k.ddg.name.clone()).collect();
        assert_eq!(names.len(), kernels.len());
    }

    #[test]
    fn recurrence_kernels_have_positive_recmii() {
        let lat = OpLatencies::paper_baseline();
        assert!(ddot().ddg.rec_mii(&lat) >= 4);
        assert!(livermore5_tridiag().ddg.rec_mii(&lat) >= 4);
        assert!(second_order_recurrence().ddg.rec_mii(&lat) >= 4);
        assert_eq!(daxpy().ddg.rec_mii(&lat), 1);
    }

    #[test]
    fn wide_kernels_are_resource_bound() {
        let lat = OpLatencies::paper_baseline();
        let res = ResourceCounts::paper_baseline();
        let w = wide_expression();
        assert!(res_mii(&w.ddg, &lat, res) >= 4, "16 loads on 4 ports");
    }

    #[test]
    fn memory_descriptors_present_on_all_memory_ops() {
        for k in all_kernels() {
            for (_, n) in k.ddg.nodes() {
                if n.kind.is_memory() {
                    assert!(n.mem.is_some(), "{}", k.ddg.name);
                }
            }
        }
    }

    #[test]
    fn mixed_bound_population() {
        // The kernel set alone should contain compute-, memory- and
        // recurrence-bound loops for the baseline machine.
        let lat = OpLatencies::paper_baseline();
        let res = ResourceCounts::paper_baseline();
        let mut rec_bound = 0;
        let mut res_bound = 0;
        for k in all_kernels() {
            let rec = k.ddg.rec_mii(&lat);
            let rsm = res_mii(&k.ddg, &lat, res);
            if rec > rsm {
                rec_bound += 1;
            } else {
                res_bound += 1;
            }
        }
        assert!(rec_bound >= 5, "recurrence bound kernels: {rec_bound}");
        assert!(res_bound >= 5, "resource bound kernels: {res_bound}");
    }
}
