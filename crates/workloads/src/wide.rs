//! Wide-window synthetic kernel family: large IIs, crowded rows, no churn.
//!
//! The churn family (see [`crate::churn`]) stresses the *backtracking*
//! machinery; this family stresses the other per-attempt cost the scheduler
//! pays even when nothing is ever ejected — the **free-slot window search**.
//! Every loop is built memory-bound with a port-saturating stream count, so:
//!
//! * **the II is large** — the shared memory ports (4 on the paper baseline)
//!   bound ResMII at `mem_ops / 4`, between ~19 and ~36 here, giving every
//!   operation an II-wide scan window;
//! * **the rows the scans walk are crowded** — the scheduler packs the
//!   memory rows tight by construction (the k-th stream finds the first
//!   `k / ports` rows full), so a per-row `can_place` walk probes a long run
//!   of occupied rows before the first free one, while the bitmask search
//!   skips them word-at-a-time;
//! * **long non-pipelined operations ride along** — a couple of 17-cycle
//!   divides (and 30-cycle square roots in the larger shapes) exercise the
//!   multi-row span checks of the availability summary, but only at IIs
//!   where they fit on a single unit (`occupancy ≤ II` is guaranteed by the
//!   stream-count floor), so they never trigger the churn family's II-ladder
//!   storms;
//! * **bodies are acyclic** — the II must come from the resource bound, not
//!   from recurrences, or the windows would shrink to dependence slack.
//!
//! Generation is fully deterministic given the seed.

use hcrf_ir::{DdgBuilder, Loop, NodeId, OpKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the wide-window population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WideWindowParams {
    /// Number of loops to generate.
    pub loops: usize,
    /// RNG seed (the default seed reproduces the standard wide suite).
    pub seed: u64,
}

impl Default for WideWindowParams {
    fn default() -> Self {
        WideWindowParams {
            loops: 32,
            seed: 0x51de_0b17,
        }
    }
}

/// Generator for the wide-window loop population.
#[derive(Debug, Clone)]
pub struct WideWindowWorkload {
    params: WideWindowParams,
}

impl WideWindowWorkload {
    /// Create a generator with the given parameters.
    pub fn new(params: WideWindowParams) -> Self {
        WideWindowWorkload { params }
    }

    /// Generate the whole population.
    pub fn generate(&self) -> Vec<Loop> {
        let mut rng = SmallRng::seed_from_u64(self.params.seed);
        (0..self.params.loops)
            .map(|i| generate_one(i, &mut rng))
            .collect()
    }
}

fn generate_one(index: usize, rng: &mut SmallRng) -> Loop {
    let mut b = DdgBuilder::new(format!("wide{index:04}"));
    let mut array = 0u32;

    // Alternate two shapes: a "divide" shape whose stream count floors the
    // II at >= 19 (a 17-cycle divide fits any single unit) and a "sqrt"
    // shape flooring it at >= 31 (a 30-cycle square root fits too).
    let sqrt_shape = index % 2 == 1;
    let streams = if sqrt_shape {
        rng.gen_range(62..=72usize) // 124..144 memory ops -> II >= 31
    } else {
        rng.gen_range(38..=48usize) // 76..96 memory ops -> II >= 19
    };

    // Port-saturating load/store streams, each with one cheap FU operation
    // in the middle so the lifetimes stay short (the family must be bounded
    // by the memory ports, not by register pressure).
    let mut vals: Vec<NodeId> = Vec::new();
    for k in 0..streams {
        let l = b.load(array, 8);
        array += 1;
        let f = b.op(if k % 3 == 0 {
            OpKind::FMul
        } else {
            OpKind::FAdd
        });
        b.flow(l, f, 0);
        // A little cross-stream mixing widens the dependence fan without
        // creating long lifetimes (operands come from a recent window).
        if !vals.is_empty() && k % 4 == 0 {
            let recent = vals.len().min(6);
            b.flow(vals[vals.len() - 1 - rng.gen_range(0..recent)], f, 0);
        }
        let s = b.store(array, 8);
        array += 1;
        b.flow(f, s, 0);
        vals.push(f);
    }

    // The long non-pipelined tail: divides (both shapes) and square roots
    // (sqrt shape only), consuming recent fan results and feeding stores so
    // they sit on real paths. The stream-count floor keeps occupancy <= II,
    // so these fit on one unit at the resource-bound II — they exercise the
    // multi-row span checks of the slot search without churning.
    let longs = rng.gen_range(2..=4usize);
    for j in 0..longs {
        let kind = if sqrt_shape && j % 2 == 0 {
            OpKind::FSqrt
        } else {
            OpKind::FDiv
        };
        let d = b.op(kind);
        let recent = vals.len().min(8);
        b.flow(vals[vals.len() - 1 - rng.gen_range(0..recent)], d, 0);
        let s = b.store(array, 8);
        array += 1;
        b.flow(d, s, 0);
    }

    let iterations = 128 + (rng.gen_range(0..8u64)) * 64;
    Loop::new(b.build(), iterations, 8)
}

/// The standard wide-window suite: `loops` deterministic memory-bound
/// large-II loops with the default seed.
pub fn wide_window_suite(loops: usize) -> Vec<Loop> {
    WideWindowWorkload::new(WideWindowParams {
        loops,
        ..Default::default()
    })
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_machine::{MachineConfig, RfOrganization};
    use hcrf_sched::{schedule_loop, SchedulerParams};

    #[test]
    fn generation_is_deterministic_and_valid() {
        let a = wide_window_suite(12);
        let b = wide_window_suite(12);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.ddg.name, y.ddg.name);
            assert_eq!(x.ddg.num_nodes(), y.ddg.num_nodes());
            assert_eq!(x.ddg.num_edges(), y.ddg.num_edges());
            x.ddg.validate().expect(&x.ddg.name);
            assert!(x.ddg.name.starts_with("wide"), "{}", x.ddg.name);
        }
    }

    #[test]
    fn wide_loops_are_memory_bound_at_large_ii_without_churn() {
        // The family exists to stress the slot-window search, not the
        // backtracking machinery: every loop must reach a large II (wide
        // windows) while walking a *short* II ladder (no divide storms).
        let loops = wide_window_suite(4);
        let m = MachineConfig::paper_baseline(RfOrganization::parse("S128").unwrap());
        for l in &loops {
            let r = schedule_loop(&l.ddg, &m, &SchedulerParams::default());
            assert!(!r.failed, "{} failed to schedule", l.ddg.name);
            assert!(
                r.ii >= 19,
                "{}: II {} too small for wide windows",
                l.ddg.name,
                r.ii
            );
            assert!(
                r.stats.ii_restarts <= 4,
                "{}: {} II restarts — the family must not churn",
                l.ddg.name,
                r.stats.ii_restarts
            );
        }
    }

    #[test]
    fn long_occupancy_ops_fit_the_resource_bound_ii() {
        // The stream-count floors guarantee occupancy <= II on every
        // generated loop: divides need II >= 17, square roots II >= 30.
        let lat = hcrf_ir::OpLatencies::paper_baseline();
        for l in wide_window_suite(8) {
            let mem_ops = l.ddg.memory_ops() as u32;
            let floor = mem_ops.div_ceil(4);
            let has_sqrt = l
                .ddg
                .node_ids()
                .any(|n| l.ddg.node(n).kind == OpKind::FSqrt);
            let need = if has_sqrt {
                lat.occupancy(OpKind::FSqrt)
            } else {
                lat.occupancy(OpKind::FDiv)
            };
            assert!(
                floor >= need,
                "{}: resource-bound II {floor} below occupancy {need}",
                l.ddg.name
            );
        }
    }
}
