//! Seeded synthetic loop population.
//!
//! Substitutes for the Perfect Club loop workbench (1258 software-pipelineable
//! innermost loops). Loops are generated from three archetypes whose mix is
//! calibrated so that, on the baseline 8-FU / 4-memory-port machine with a
//! monolithic register file, the population is roughly 20 % compute bound,
//! 50 % memory bound and 30 % recurrence bound — the Table 1 breakdown:
//!
//! * **Memory streaming** loops: load/store rich bodies with short arithmetic
//!   chains (copies, scaled updates, gathers);
//! * **Compute** loops: wide expression trees and multiply-add chains, with an
//!   occasional divide or square root;
//! * **Recurrence** loops: first- and second-order recurrences (sums,
//!   filters, tridiagonal-style back substitutions) with extra streaming work
//!   around them.
//!
//! Generation is fully deterministic given the seed.

use hcrf_ir::{DdgBuilder, Loop, NodeId, OpKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticParams {
    /// Number of loops to generate.
    pub loops: usize,
    /// RNG seed (the default seed reproduces the standard suite).
    pub seed: u64,
    /// Fraction of memory-streaming loops.
    pub memory_fraction: f64,
    /// Fraction of recurrence-bound loops.
    pub recurrence_fraction: f64,
}

impl Default for SyntheticParams {
    fn default() -> Self {
        SyntheticParams {
            loops: 1232,
            seed: 0x1cf1_2003,
            memory_fraction: 0.52,
            recurrence_fraction: 0.28,
        }
    }
}

/// Generator for the synthetic loop population.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    params: SyntheticParams,
}

impl SyntheticWorkload {
    /// Create a generator with the given parameters.
    pub fn new(params: SyntheticParams) -> Self {
        SyntheticWorkload { params }
    }

    /// Generate the whole population.
    pub fn generate(&self) -> Vec<Loop> {
        let mut rng = SmallRng::seed_from_u64(self.params.seed);
        (0..self.params.loops)
            .map(|i| self.generate_one(i, &mut rng))
            .collect()
    }

    fn generate_one(&self, index: usize, rng: &mut SmallRng) -> Loop {
        let archetype = {
            let x: f64 = rng.gen();
            if x < self.params.memory_fraction {
                Archetype::Memory
            } else if x < self.params.memory_fraction + self.params.recurrence_fraction {
                Archetype::Recurrence
            } else {
                Archetype::Compute
            }
        };
        let name = format!("syn{index:04}_{}", archetype.tag());
        let mut b = DdgBuilder::new(name);
        match archetype {
            Archetype::Memory => build_memory_loop(&mut b, rng),
            Archetype::Compute => build_compute_loop(&mut b, rng),
            Archetype::Recurrence => build_recurrence_loop(&mut b, rng),
        }
        let iterations = log_uniform(rng, 32, 4096);
        let invocations = log_uniform(rng, 1, 256);
        Loop::new(b.build(), iterations, invocations)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Archetype {
    Memory,
    Compute,
    Recurrence,
}

impl Archetype {
    fn tag(self) -> &'static str {
        match self {
            Archetype::Memory => "mem",
            Archetype::Compute => "fu",
            Archetype::Recurrence => "rec",
        }
    }
}

fn log_uniform(rng: &mut SmallRng, lo: u64, hi: u64) -> u64 {
    let llo = (lo as f64).ln();
    let lhi = (hi as f64).ln();
    let x: f64 = rng.gen_range(llo..lhi);
    x.exp().round().max(lo as f64) as u64
}

/// A streaming loop: `streams` independent load→(short chain)→store threads,
/// occasionally sharing an input stream.
fn build_memory_loop(b: &mut DdgBuilder, rng: &mut SmallRng) {
    let streams = rng.gen_range(2..=6usize);
    let mut array = 0u32;
    for _ in 0..streams {
        let chain_len = rng.gen_range(0..=2usize);
        let stride = if rng.gen_bool(0.8) {
            8
        } else {
            8 * rng.gen_range(2..=16) as i64
        };
        let l = b.load(array, stride);
        array += 1;
        let mut prev = l;
        for _ in 0..chain_len {
            let op = if rng.gen_bool(0.6) {
                b.op(OpKind::FAdd)
            } else if rng.gen_bool(0.85) {
                b.op(OpKind::FMul)
            } else {
                b.op_invariant(OpKind::FMul)
            };
            b.flow(prev, op, 0);
            prev = op;
        }
        if rng.gen_bool(0.75) {
            let s = b.store(array, stride);
            array += 1;
            b.flow(prev, s, 0);
        }
    }
    // Occasionally an extra pure copy (load feeding a store directly).
    if rng.gen_bool(0.4) {
        let l = b.load(array, 8);
        let s = b.store(array + 1, 8);
        b.flow(l, s, 0);
    }
}

/// A compute loop: a handful of input streams feeding a deep / wide
/// arithmetic expression, with an occasional divide or square root.
fn build_compute_loop(b: &mut DdgBuilder, rng: &mut SmallRng) {
    let inputs = rng.gen_range(2..=4usize);
    let mut values: Vec<NodeId> = Vec::new();
    for a in 0..inputs {
        values.push(b.load(a as u32, 8));
    }
    let ops = rng.gen_range(8..=24usize);
    for _ in 0..ops {
        let kind = {
            let x: f64 = rng.gen();
            if x < 0.47 {
                OpKind::FAdd
            } else if x < 0.92 {
                OpKind::FMul
            } else if x < 0.97 {
                OpKind::FDiv
            } else {
                OpKind::FSqrt
            }
        };
        let op = if rng.gen_bool(0.2) {
            b.op_invariant(kind)
        } else {
            b.op(kind)
        };
        // One or two operands drawn from the existing values.
        let a = values[rng.gen_range(0..values.len())];
        b.flow(a, op, 0);
        if rng.gen_bool(0.7) {
            let c = values[rng.gen_range(0..values.len())];
            if c != op {
                b.flow(c, op, 0);
            }
        }
        values.push(op);
    }
    // Store one or two results.
    let stores = rng.gen_range(1..=2usize);
    for k in 0..stores {
        let s = b.store(16 + k as u32, 8);
        let v = values[values.len() - 1 - k];
        b.flow(v, s, 0);
    }
}

/// A recurrence loop: a cyclic core (first or second order) surrounded by
/// streaming work.
fn build_recurrence_loop(b: &mut DdgBuilder, rng: &mut SmallRng) {
    let order = if rng.gen_bool(0.7) { 1u32 } else { 2 };
    let cycle_len = rng.gen_range(1..=3usize);
    let feed = b.load(0, 8);
    // Build the cycle: op_0 -> op_1 -> ... -> op_{k-1} -> op_0 (distance = order)
    let mut cycle_nodes = Vec::new();
    for i in 0..cycle_len {
        let kind = if rng.gen_bool(0.7) {
            OpKind::FAdd
        } else {
            OpKind::FMul
        };
        let op = b.op(kind);
        if i == 0 {
            b.flow(feed, op, 0);
        } else {
            b.flow(cycle_nodes[i - 1], op, 0);
        }
        cycle_nodes.push(op);
    }
    b.flow(*cycle_nodes.last().unwrap(), cycle_nodes[0], order);
    // Sometimes store the recurrence value.
    if rng.gen_bool(0.6) {
        let s = b.store(1, 8);
        b.flow(*cycle_nodes.last().unwrap(), s, 0);
    }
    // Streaming side work.
    let side = rng.gen_range(0..=3usize);
    for k in 0..side {
        let l = b.load(2 + k as u32, 8);
        let m = b.op_invariant(OpKind::FMul);
        let s = b.store(8 + k as u32, 8);
        b.flow(l, m, 0).flow(m, s, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_ir::{OpLatencies, ResourceCounts};

    #[test]
    fn generation_is_deterministic() {
        let params = SyntheticParams {
            loops: 40,
            ..Default::default()
        };
        let a = SyntheticWorkload::new(params).generate();
        let b = SyntheticWorkload::new(params).generate();
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.ddg.name, y.ddg.name);
            assert_eq!(x.ddg.num_nodes(), y.ddg.num_nodes());
            assert_eq!(x.ddg.num_edges(), y.ddg.num_edges());
            assert_eq!(x.iterations, y.iterations);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticWorkload::new(SyntheticParams {
            loops: 20,
            seed: 1,
            ..Default::default()
        })
        .generate();
        let b = SyntheticWorkload::new(SyntheticParams {
            loops: 20,
            seed: 2,
            ..Default::default()
        })
        .generate();
        let same = a
            .iter()
            .zip(b.iter())
            .filter(|(x, y)| x.ddg.num_nodes() == y.ddg.num_nodes())
            .count();
        assert!(same < 20, "different seeds should give different loops");
    }

    #[test]
    fn all_generated_loops_are_valid() {
        let loops = SyntheticWorkload::new(SyntheticParams {
            loops: 200,
            ..Default::default()
        })
        .generate();
        for l in &loops {
            l.ddg.validate().expect(&l.ddg.name);
            assert!(l.ddg.num_nodes() >= 2, "{}", l.ddg.name);
            assert!(l.iterations >= 32);
        }
    }

    #[test]
    fn population_mix_resembles_the_paper() {
        // On the baseline machine the loop-bound mix should be roughly
        // 20 % FU / 50 % memory / 30 % recurrence (Table 1); allow wide
        // tolerances — only the ordering matters for the reproduction.
        let loops = SyntheticWorkload::new(SyntheticParams {
            loops: 400,
            ..Default::default()
        })
        .generate();
        let lat = OpLatencies::paper_baseline();
        let res = ResourceCounts::paper_baseline();
        let mut mem = 0;
        let mut rec = 0;
        let mut fu = 0;
        for l in &loops {
            let rec_mii = l.ddg.rec_mii(&lat);
            let (fu_ops, mem_ops) = hcrf_ir::mii::op_counts(&l.ddg);
            let fu_bound = (fu_ops as f64 / res.fus as f64).ceil() as u32;
            let mem_bound = (mem_ops as f64 / res.mem_ports as f64).ceil() as u32;
            if rec_mii >= fu_bound.max(mem_bound) && rec_mii > 1 {
                rec += 1;
            } else if mem_bound >= fu_bound {
                mem += 1;
            } else {
                fu += 1;
            }
        }
        let n = loops.len() as f64;
        let memf = mem as f64 / n;
        let recf = rec as f64 / n;
        let fuf = fu as f64 / n;
        assert!(memf > 0.30, "memory-bound fraction {memf}");
        assert!(recf > 0.12, "recurrence-bound fraction {recf}");
        assert!(fuf > 0.05, "fu-bound fraction {fuf}");
    }

    #[test]
    fn memory_loops_have_strided_descriptors() {
        let loops = SyntheticWorkload::new(SyntheticParams {
            loops: 50,
            ..Default::default()
        })
        .generate();
        for l in &loops {
            for (_, n) in l.ddg.nodes() {
                if n.kind.is_memory() {
                    let m = n.mem.unwrap();
                    assert!(m.size == 8 || m.size == 4);
                }
            }
        }
    }
}
