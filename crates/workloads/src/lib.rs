//! Loop workload suite.
//!
//! The paper evaluates its register-file organizations on the 1258
//! software-pipelineable innermost loops of the Perfect Club benchmarks,
//! compiled with the ICTINEO front-end. Neither is available, so this crate
//! provides a substitute with the same interface to the schedulers — a set of
//! dependence graphs with memory-access descriptors and trip counts:
//!
//! * [`kernels`] — ~25 hand-written dependence graphs of classic numerical
//!   loops (Livermore-style kernels, BLAS level-1 loops, stencils,
//!   recurrences, ...), each annotated with realistic trip counts;
//! * [`synthetic`] — a deterministic, seeded generator that produces a
//!   configurable population of loops whose size, memory/compute balance and
//!   recurrence structure follow documented distributions, calibrated so the
//!   aggregate behaviour on the baseline machine resembles the paper's
//!   workbench (≈20 % FU-bound, ≈50 % memory-bound, ≈30 % recurrence-bound
//!   loops on the S128 configuration — Table 1);
//! * [`suite`] — the standard evaluation suite used by all benches:
//!   the hand-written kernels plus a synthetic population, 1258 loops total;
//! * [`churn`] — an ejection-churn-heavy family (long non-pipelined
//!   operations near the II, high resource contention) that stresses the
//!   scheduler's backtracking paths; built via [`churn::churn_suite`] and
//!   used by `benches/ejection.rs` and the victim-search equivalence tests;
//! * [`wide`] — a memory-bound large-II family whose port-saturating
//!   streams crowd the MRT rows, stressing the free-slot *window search*
//!   (the cost the scheduler pays even without a single ejection); built via
//!   [`wide::wide_window_suite`] and used by `benches/ejection.rs` and the
//!   slot-search equivalence tests.
//!
//! ```
//! let suite = hcrf_workloads::standard_suite();
//! assert_eq!(suite.len(), 1258);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod churn;
pub mod kernels;
pub mod suite;
pub mod synthetic;
pub mod wide;

pub use churn::{churn_suite, ChurnParams, ChurnWorkload};
pub use kernels::all_kernels;
pub use suite::{small_suite, standard_suite, SuiteParams};
pub use synthetic::{SyntheticParams, SyntheticWorkload};
pub use wide::{wide_window_suite, WideWindowParams, WideWindowWorkload};
