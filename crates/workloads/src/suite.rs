//! The standard evaluation suite: hand-written kernels plus the synthetic
//! population, 1258 loops in total (the size of the paper's workbench).

use crate::kernels::all_kernels;
use crate::synthetic::{SyntheticParams, SyntheticWorkload};
use hcrf_ir::Loop;
use serde::{Deserialize, Serialize};

/// Parameters of the evaluation suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuiteParams {
    /// Total number of loops (kernels + synthetic).
    pub total_loops: usize,
    /// Seed of the synthetic part.
    pub seed: u64,
}

impl Default for SuiteParams {
    fn default() -> Self {
        SuiteParams {
            total_loops: 1258,
            seed: SyntheticParams::default().seed,
        }
    }
}

/// Build a suite with explicit parameters.
pub fn suite(params: SuiteParams) -> Vec<Loop> {
    let mut loops = all_kernels();
    if params.total_loops > loops.len() {
        let synthetic = SyntheticWorkload::new(SyntheticParams {
            loops: params.total_loops - loops.len(),
            seed: params.seed,
            ..Default::default()
        })
        .generate();
        loops.extend(synthetic);
    } else {
        loops.truncate(params.total_loops);
    }
    loops
}

/// The standard 1258-loop suite used by the benches (kernels + synthetic).
pub fn standard_suite() -> Vec<Loop> {
    suite(SuiteParams::default())
}

/// A reduced suite for tests and examples: the hand-written kernels plus
/// `extra` synthetic loops.
pub fn small_suite(extra: usize) -> Vec<Loop> {
    suite(SuiteParams {
        total_loops: all_kernels().len() + extra,
        ..Default::default()
    })
}

/// The standard suite extended with `churn` ejection-churn-heavy loops (see
/// [`crate::churn`]): the scenario where backtracking, not pressure
/// checking, dominates scheduling time.
pub fn small_suite_with_churn(extra: usize, churn: usize) -> Vec<Loop> {
    let mut loops = small_suite(extra);
    loops.extend(crate::churn::churn_suite(churn));
    loops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_has_1258_loops() {
        let s = standard_suite();
        assert_eq!(s.len(), 1258);
    }

    #[test]
    fn small_suite_size() {
        let s = small_suite(10);
        assert_eq!(s.len(), all_kernels().len() + 10);
        let none = small_suite(0);
        assert_eq!(none.len(), all_kernels().len());
    }

    #[test]
    fn suite_truncates_when_requested_fewer_than_kernels() {
        let s = suite(SuiteParams {
            total_loops: 5,
            ..Default::default()
        });
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn suite_loops_have_unique_names() {
        use std::collections::HashSet;
        let s = small_suite(100);
        let names: HashSet<_> = s.iter().map(|l| l.ddg.name.clone()).collect();
        assert_eq!(names.len(), s.len());
    }

    #[test]
    fn churn_extension_appends_the_churn_family() {
        let base = small_suite(4);
        let s = small_suite_with_churn(4, 6);
        assert_eq!(s.len(), base.len() + 6);
        assert!(s[base.len()..]
            .iter()
            .all(|l| l.ddg.name.starts_with("churn")));
    }

    #[test]
    fn suite_is_deterministic() {
        let a = small_suite(50);
        let b = small_suite(50);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.ddg.name, y.ddg.name);
            assert_eq!(x.iterations, y.iterations);
        }
    }
}
