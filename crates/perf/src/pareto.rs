//! Pareto-comparable metric bundles for design-space exploration.
//!
//! The paper's evaluation juggles four antagonistic objectives: execution
//! time (cycles × clock), register-file area, clock period and memory
//! traffic. A configuration is only *uninteresting* when another one is at
//! least as good on every objective and strictly better on one — Pareto
//! dominance. This module bundles the four objectives of one configuration
//! and extracts the non-dominated frontier of a candidate set; the
//! `hcrf-explore` subsystem ranks whole design spaces with it.

use crate::metrics::SuiteAggregate;
use serde::{Deserialize, Serialize};

/// The four minimized objectives of one configuration under one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricBundle {
    /// Execution time of the whole suite in nanoseconds.
    pub exec_time_ns: f64,
    /// Total register-file area in Mλ².
    pub total_area: f64,
    /// Clock period in nanoseconds.
    pub clock_ns: f64,
    /// Memory traffic in accesses (original references + spill code).
    pub memory_traffic: u64,
}

impl MetricBundle {
    /// Bundle the objectives of one suite run given the configuration's
    /// hardware area.
    pub fn from_aggregate(aggregate: &SuiteAggregate, total_area: f64) -> Self {
        MetricBundle {
            exec_time_ns: aggregate.execution_time_ns(),
            total_area,
            clock_ns: aggregate.clock_ns,
            memory_traffic: aggregate.memory_traffic,
        }
    }

    /// The objectives as an ordered array (all minimized).
    pub fn objectives(&self) -> [f64; 4] {
        [
            self.exec_time_ns,
            self.total_area,
            self.clock_ns,
            self.memory_traffic as f64,
        ]
    }

    /// Whether `self` Pareto-dominates `other`: at least as good on every
    /// objective and strictly better on at least one.
    pub fn dominates(&self, other: &MetricBundle) -> bool {
        let a = self.objectives();
        let b = other.objectives();
        let mut strictly_better = false;
        for (x, y) in a.iter().zip(b.iter()) {
            if x > y {
                return false;
            }
            if x < y {
                strictly_better = true;
            }
        }
        strictly_better
    }
}

/// Mask of the Pareto-optimal (non-dominated) points of `points`.
///
/// `mask[i]` is `true` when no other point dominates `points[i]`. Duplicate
/// bundles are all kept (none dominates its copy).
pub fn pareto_frontier(points: &[MetricBundle]) -> Vec<bool> {
    points
        .iter()
        .map(|candidate| !points.iter().any(|other| other.dominates(candidate)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle(time: f64, area: f64, clock: f64, traffic: u64) -> MetricBundle {
        MetricBundle {
            exec_time_ns: time,
            total_area: area,
            clock_ns: clock,
            memory_traffic: traffic,
        }
    }

    #[test]
    fn dominance_requires_all_objectives() {
        let better = bundle(1.0, 1.0, 1.0, 10);
        let worse = bundle(2.0, 2.0, 2.0, 20);
        let mixed = bundle(0.5, 3.0, 1.0, 10);
        assert!(better.dominates(&worse));
        assert!(!worse.dominates(&better));
        // Trade-offs do not dominate in either direction.
        assert!(!better.dominates(&mixed));
        assert!(!mixed.dominates(&better));
    }

    #[test]
    fn equal_points_do_not_dominate_each_other() {
        let a = bundle(1.0, 1.0, 1.0, 10);
        assert!(!a.dominates(&a));
        let mask = pareto_frontier(&[a, a]);
        assert_eq!(mask, vec![true, true]);
    }

    #[test]
    fn frontier_extraction() {
        let points = vec![
            bundle(1.0, 4.0, 1.0, 10), // fast but big: on frontier
            bundle(4.0, 1.0, 0.5, 10), // small and fast clock: on frontier
            bundle(4.0, 4.0, 1.0, 10), // dominated by the first
            bundle(2.0, 2.0, 0.8, 5),  // balanced: on frontier
        ];
        let mask = pareto_frontier(&points);
        assert_eq!(mask, vec![true, true, false, true]);
    }

    #[test]
    fn from_aggregate_carries_time_and_traffic() {
        let mut agg = SuiteAggregate::new("S64", 2.0);
        agg.useful_cycles = 100;
        agg.stall_cycles = 50;
        agg.memory_traffic = 777;
        let m = MetricBundle::from_aggregate(&agg, 12.5);
        assert!((m.exec_time_ns - 300.0).abs() < 1e-9);
        assert_eq!(m.memory_traffic, 777);
        assert!((m.total_area - 12.5).abs() < 1e-9);
        assert!((m.clock_ns - 2.0).abs() < 1e-9);
    }
}
