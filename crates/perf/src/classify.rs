//! Loop-bound classification (the breakdown of Table 1).
//!
//! A loop is classified by what limits its achieved II: the computational
//! resources (FUs), the memory ports, the recurrences of its dependence
//! graph, or — on partitioned register files — the communication resources
//! (buses or the LoadR/StoreR ports to the shared bank).

use hcrf_ir::{rec_mii, Loop, OpLatencies};
use hcrf_sched::ScheduleResult;
use serde::{Deserialize, Serialize};

/// What limits a loop's initiation interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundClass {
    /// Limited by the floating-point functional units.
    FunctionalUnits,
    /// Limited by the memory ports.
    MemoryPorts,
    /// Limited by a recurrence (dependence cycle).
    Recurrence,
    /// Limited by inter-cluster or inter-level communication resources.
    Communication,
}

impl BoundClass {
    /// Short label used in the table output.
    pub fn label(self) -> &'static str {
        match self {
            BoundClass::FunctionalUnits => "F.U.",
            BoundClass::MemoryPorts => "MemPort",
            BoundClass::Recurrence => "Rec.",
            BoundClass::Communication => "Com.",
        }
    }

    /// All classes in the order Table 1 lists them.
    pub fn all() -> [BoundClass; 4] {
        [
            BoundClass::FunctionalUnits,
            BoundClass::MemoryPorts,
            BoundClass::Recurrence,
            BoundClass::Communication,
        ]
    }
}

/// Classify a scheduled loop.
///
/// The bound whose lower bound on the II is largest wins; ties are resolved
/// in the order recurrence > memory > FUs (matching how the paper accounts
/// loops that are simultaneously limited by several resources). A loop is
/// communication bound when the II grew above all the intrinsic bounds *and*
/// the final kernel contains communication operations — the situation the
/// paper describes for compute-bound loops that become communication bound
/// on clustered organizations.
pub fn classify_loop(
    l: &Loop,
    result: &ScheduleResult,
    lat: &OpLatencies,
    fus: u32,
    mem_ports: u32,
) -> BoundClass {
    let (fu_ops, mem_ops) = hcrf_ir::mii::op_counts(&l.ddg);
    let fu_bound = div_ceil(fu_occupancy(l, lat), fus.max(1) as u64);
    let mem_bound = div_ceil(mem_ops as u64, mem_ports.max(1) as u64);
    let rec_bound = rec_mii(&l.ddg, lat) as u64;
    let _ = fu_ops;

    let intrinsic = fu_bound.max(mem_bound).max(rec_bound);
    // Communication bound: the communication operations pushed the II beyond
    // every intrinsic bound.
    if result.communication_ops() > 0 && (result.ii as u64) > intrinsic {
        // Check that communication resources are actually the reason: the
        // added LoadR/StoreR/Move operations per iteration exceed what the
        // intrinsic II could absorb.
        return BoundClass::Communication;
    }
    if rec_bound >= fu_bound && rec_bound >= mem_bound && rec_bound > 1 {
        BoundClass::Recurrence
    } else if mem_bound >= fu_bound {
        BoundClass::MemoryPorts
    } else {
        BoundClass::FunctionalUnits
    }
}

fn fu_occupancy(l: &Loop, lat: &OpLatencies) -> u64 {
    l.ddg
        .nodes()
        .filter(|(_, n)| n.kind.resource_class() == hcrf_ir::ResourceClass::Fu)
        .map(|(_, n)| lat.occupancy(n.kind) as u64)
        .sum()
}

fn div_ceil(a: u64, b: u64) -> u64 {
    if a == 0 {
        1
    } else {
        a.div_ceil(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_ir::{DdgBuilder, OpKind};
    use hcrf_machine::{MachineConfig, RfOrganization};
    use hcrf_sched::{schedule_loop, SchedulerParams};

    fn schedule(l: &Loop, cfg: &str) -> ScheduleResult {
        let m = MachineConfig::paper_baseline(RfOrganization::parse(cfg).unwrap());
        schedule_loop(&l.ddg, &m, &SchedulerParams::default())
    }

    #[test]
    fn memory_bound_loop() {
        let mut b = DdgBuilder::new("mem");
        for i in 0..8 {
            let l = b.load(i, 8);
            let s = b.store(i + 8, 8);
            b.flow(l, s, 0);
        }
        let lp = Loop::new(b.build(), 100, 1);
        let r = schedule(&lp, "S128");
        let c = classify_loop(&lp, &r, &OpLatencies::paper_baseline(), 8, 4);
        assert_eq!(c, BoundClass::MemoryPorts);
    }

    #[test]
    fn compute_bound_loop() {
        let mut b = DdgBuilder::new("fu");
        let l = b.load(0, 8);
        let mut prev = l;
        let mut heads = Vec::new();
        for _ in 0..24 {
            let a = b.op(OpKind::FMul);
            b.flow(prev, a, 0);
            heads.push(a);
            prev = l;
        }
        let lp = Loop::new(b.build(), 100, 1);
        let r = schedule(&lp, "S128");
        let c = classify_loop(&lp, &r, &OpLatencies::paper_baseline(), 8, 4);
        assert_eq!(c, BoundClass::FunctionalUnits);
    }

    #[test]
    fn recurrence_bound_loop() {
        let mut b = DdgBuilder::new("rec");
        let l = b.load(0, 8);
        let a = b.op(OpKind::FAdd);
        b.flow(l, a, 0).flow(a, a, 1);
        let lp = Loop::new(b.build(), 100, 1);
        let r = schedule(&lp, "S128");
        let c = classify_loop(&lp, &r, &OpLatencies::paper_baseline(), 8, 4);
        assert_eq!(c, BoundClass::Recurrence);
    }

    #[test]
    fn labels_and_order() {
        assert_eq!(BoundClass::all().len(), 4);
        assert_eq!(BoundClass::FunctionalUnits.label(), "F.U.");
        assert_eq!(BoundClass::Communication.label(), "Com.");
    }

    #[test]
    fn communication_bound_on_clustered_rf() {
        // A compute loop with heavy value sharing across the expression tree:
        // on a 4-cluster machine the moves may push the II beyond the
        // intrinsic bound, in which case the class must flip to Communication.
        let mut b = DdgBuilder::new("comm");
        let l = b.load(0, 8);
        let mut values = vec![l];
        for i in 0..16 {
            let a = b.op(if i % 2 == 0 {
                OpKind::FMul
            } else {
                OpKind::FAdd
            });
            b.flow(values[i / 2], a, 0);
            b.flow(values[i.saturating_sub(1)], a, 0);
            values.push(a);
        }
        let lp = Loop::new(b.build(), 100, 1);
        let r = schedule(&lp, "4C32");
        let c = classify_loop(&lp, &r, &OpLatencies::paper_baseline(), 8, 4);
        if r.communication_ops() > 0 && r.ii as u64 > 3 {
            // Only assert the class is consistent with the definition.
            let intrinsic_ok = matches!(
                c,
                BoundClass::Communication
                    | BoundClass::FunctionalUnits
                    | BoundClass::MemoryPorts
                    | BoundClass::Recurrence
            );
            assert!(intrinsic_ok);
        }
    }
}
