//! Performance model: execution cycles, memory traffic, IPC, loop-bound
//! classification and relative speedups (Section 2.3 of the paper).
//!
//! The paper estimates the execution cycles of a software-pipelined loop as
//! `II × (N + (SC − 1) × E) + StallCycles`, where `N` is the total number of
//! iterations across the program run, `E` the number of times the loop is
//! entered, `II` the initiation interval and `SC` the stage count. Memory
//! traffic is `N × trf`, with `trf` the number of memory accesses per
//! iteration of the final kernel (original references plus spill code).
//! Execution *time* multiplies the cycles by the configuration's clock
//! period, which is how slower-but-leaner register-file organizations end up
//! winning (Tables 5 and 6).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classify;
pub mod metrics;
pub mod pareto;

pub use classify::{classify_loop, BoundClass};
pub use metrics::{
    execution_cycles, execution_time_ns, ipc, memory_traffic, LoopPerformance, SuiteAggregate,
};
pub use pareto::{pareto_frontier, MetricBundle};
