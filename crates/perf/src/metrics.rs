//! Per-loop and aggregate performance metrics.

use hcrf_ir::Loop;
use hcrf_sched::ScheduleResult;
use serde::{Deserialize, Serialize};

/// Execution cycles of one loop: `II * (N + (SC - 1) * E) + stalls`.
pub fn execution_cycles(result: &ScheduleResult, l: &Loop, stall_cycles: u64) -> u64 {
    let ii = result.ii as u64;
    let n = l.iterations;
    let e = l.invocations.max(1);
    let sc = result.sc.max(1) as u64;
    ii * (n + (sc - 1) * e) + stall_cycles
}

/// Execution time in nanoseconds given the configuration's clock period.
pub fn execution_time_ns(cycles: u64, clock_ns: f64) -> f64 {
    cycles as f64 * clock_ns
}

/// Memory traffic of one loop across the run: `N * trf` where `trf` counts
/// the original references plus any spill accesses in the final kernel.
pub fn memory_traffic(result: &ScheduleResult, l: &Loop) -> u64 {
    l.iterations * result.memory_traffic_per_iteration() as u64
}

/// Instructions (original operations) executed per cycle of the kernel:
/// the useful IPC of the schedule.
pub fn ipc(result: &ScheduleResult) -> f64 {
    if result.ii == 0 {
        return 0.0;
    }
    result.original_ops as f64 / result.ii as f64
}

/// Performance of one loop under one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopPerformance {
    /// Loop name.
    pub name: String,
    /// Achieved II.
    pub ii: u32,
    /// MII lower bound.
    pub mii: u32,
    /// Stage count.
    pub sc: u32,
    /// Useful execution cycles (no stalls).
    pub useful_cycles: u64,
    /// Stall cycles (0 in the ideal-memory scenario).
    pub stall_cycles: u64,
    /// Memory traffic in accesses.
    pub memory_traffic: u64,
    /// Whether the schedule achieved the MII.
    pub achieved_mii: bool,
    /// Whether scheduling failed.
    pub failed: bool,
}

impl LoopPerformance {
    /// Build the per-loop record from a schedule and the stall count.
    pub fn from_schedule(result: &ScheduleResult, l: &Loop, stall_cycles: u64) -> Self {
        LoopPerformance {
            name: result.loop_name.clone(),
            ii: result.ii,
            mii: result.mii,
            sc: result.sc,
            useful_cycles: execution_cycles(result, l, 0),
            stall_cycles,
            memory_traffic: memory_traffic(result, l),
            achieved_mii: result.achieved_mii,
            failed: result.failed,
        }
    }

    /// Total cycles including stalls.
    pub fn total_cycles(&self) -> u64 {
        self.useful_cycles + self.stall_cycles
    }
}

/// Aggregate of a whole suite under one configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SuiteAggregate {
    /// Configuration label.
    pub config: String,
    /// Clock period used for the time metrics (ns).
    pub clock_ns: f64,
    /// Sum of the per-loop IIs (the paper's ΣII).
    pub sum_ii: u64,
    /// Sum of useful execution cycles.
    pub useful_cycles: u64,
    /// Sum of stall cycles.
    pub stall_cycles: u64,
    /// Sum of memory traffic.
    pub memory_traffic: u64,
    /// Number of loops that achieved their MII.
    pub loops_at_mii: usize,
    /// Number of loops that failed to schedule.
    pub failed_loops: usize,
    /// Number of loops aggregated.
    pub loops: usize,
}

impl SuiteAggregate {
    /// Create an empty aggregate for a configuration.
    pub fn new(config: impl Into<String>, clock_ns: f64) -> Self {
        SuiteAggregate {
            config: config.into(),
            clock_ns,
            ..Default::default()
        }
    }

    /// Add one loop's performance.
    pub fn add(&mut self, perf: &LoopPerformance) {
        self.sum_ii += perf.ii as u64;
        self.useful_cycles += perf.useful_cycles;
        self.stall_cycles += perf.stall_cycles;
        self.memory_traffic += perf.memory_traffic;
        if perf.achieved_mii {
            self.loops_at_mii += 1;
        }
        if perf.failed {
            self.failed_loops += 1;
        }
        self.loops += 1;
    }

    /// Total cycles (useful + stall).
    pub fn total_cycles(&self) -> u64 {
        self.useful_cycles + self.stall_cycles
    }

    /// Execution time in nanoseconds.
    pub fn execution_time_ns(&self) -> f64 {
        execution_time_ns(self.total_cycles(), self.clock_ns)
    }

    /// Percentage of loops that achieved their MII.
    pub fn percent_at_mii(&self) -> f64 {
        if self.loops == 0 {
            0.0
        } else {
            100.0 * self.loops_at_mii as f64 / self.loops as f64
        }
    }

    /// Speed-up of this configuration relative to `baseline`
    /// (ratio of execution times; > 1 means this one is faster).
    pub fn speedup_vs(&self, baseline: &SuiteAggregate) -> f64 {
        let own = self.execution_time_ns();
        if own == 0.0 {
            return 0.0;
        }
        baseline.execution_time_ns() / own
    }

    /// Execution time relative to `baseline` (< 1 means faster).
    pub fn relative_time(&self, baseline: &SuiteAggregate) -> f64 {
        let base = baseline.execution_time_ns();
        if base == 0.0 {
            return 0.0;
        }
        self.execution_time_ns() / base
    }

    /// Cycle count relative to `baseline`.
    pub fn relative_cycles(&self, baseline: &SuiteAggregate) -> f64 {
        let base = baseline.total_cycles();
        if base == 0 {
            return 0.0;
        }
        self.total_cycles() as f64 / base as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcrf_ir::{DdgBuilder, OpKind};
    use hcrf_machine::{MachineConfig, RfOrganization};
    use hcrf_sched::{schedule_loop, SchedulerParams};

    fn sample() -> (Loop, ScheduleResult) {
        let mut b = DdgBuilder::new("s");
        let l = b.load(0, 8);
        let a = b.op(OpKind::FAdd);
        let s = b.store(1, 8);
        b.flow(l, a, 0).flow(a, s, 0);
        let lp = Loop::new(b.build(), 1000, 10);
        let m = MachineConfig::paper_baseline(RfOrganization::monolithic(64));
        let r = schedule_loop(&lp.ddg, &m, &SchedulerParams::default());
        (lp, r)
    }

    #[test]
    fn execution_cycle_formula() {
        let (lp, r) = sample();
        let cycles = execution_cycles(&r, &lp, 0);
        let expected = r.ii as u64 * (1000 + (r.sc as u64 - 1) * 10);
        assert_eq!(cycles, expected);
        assert_eq!(execution_cycles(&r, &lp, 500), expected + 500);
    }

    #[test]
    fn memory_traffic_counts_spill() {
        let (lp, mut r) = sample();
        let base = memory_traffic(&r, &lp);
        assert_eq!(base, 1000 * 2);
        r.memory_ops += 1; // pretend one spill access per iteration
        assert_eq!(memory_traffic(&r, &lp), 1000 * 3);
    }

    #[test]
    fn ipc_is_ops_over_ii() {
        let (_, r) = sample();
        let expected = r.original_ops as f64 / r.ii as f64;
        assert!((ipc(&r) - expected).abs() < 1e-12);
    }

    #[test]
    fn aggregate_and_speedup() {
        let (lp, r) = sample();
        let perf = LoopPerformance::from_schedule(&r, &lp, 100);
        let mut fast = SuiteAggregate::new("4C32", 0.5);
        let mut slow = SuiteAggregate::new("S64", 1.0);
        fast.add(&perf);
        slow.add(&perf);
        // Same cycles, half the clock period: exactly 2x speedup.
        assert!((fast.speedup_vs(&slow) - 2.0).abs() < 1e-9);
        assert!((fast.relative_time(&slow) - 0.5).abs() < 1e-9);
        assert!((fast.relative_cycles(&slow) - 1.0).abs() < 1e-9);
        assert_eq!(fast.loops, 1);
        assert_eq!(fast.percent_at_mii(), 100.0);
    }

    #[test]
    fn time_is_cycles_times_clock() {
        assert!((execution_time_ns(1000, 1.181) - 1181.0).abs() < 1e-9);
    }
}
